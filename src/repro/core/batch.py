"""Array-at-a-time read and write planners: the FTL layer of the batched kernel.

The batched device loop (``SSD.run(..., batch=N)``) splits each request chunk
into maximal runs of single-page reads and single-page writes and asks the FTL
for a *planner* over each run (:meth:`repro.core.base.FTLBase.begin_read_run` /
:meth:`~repro.core.base.FTLBase.begin_write_run`).  A planner front-loads the
vectorizable work — one :meth:`MappingDirectory.lookup_many` gather, one
page-state gather, one allocator call, one chip-index division over the whole
run — and then serves the run incrementally through :meth:`take`:

* :meth:`take` consumes requests from the current cursor for as long as the
  design's fast-path predicate holds, applying **exactly** the cache/statistics
  mutations the scalar path would (same LRU moves in the same order, same
  counter increments), and returns the per-request chip columns the timing
  engine needs;
* the first request the predicate rejects is left untouched — the device
  executes it through the ordinary scalar ``encode``/``execute_buffer`` pair,
  calls :meth:`skip`, and resumes :meth:`take`.

The cursor design matters: the expensive gathers happen once per run, not once
per fallback, so a run that alternates fast and slow requests degrades to the
scalar path's cost instead of quadratic re-planning.

Why resuming after a scalar fallback is sound: within a run every request is a
single-page read (or write), and the planners re-consult every piece of live
state a scalar request can mutate — cache dicts, page-state bytes, observer
fields — per accepted request rather than from a snapshot.  The only
pre-gathered columns are the mapping directory and (for reads) the data-page
states, and no scalar *read* path mutates either; write planners re-resolve
old mappings at commit time precisely because writes do.

Read-planner fast paths:

* :class:`DemandReadPlanner` (DFTL) — CMT hits; CMT misses whose insert cannot
  evict a dirty entry (clean LRU head), whether the translation page is
  flash-resident (double read) or never flushed (served like a hit);
* :class:`GroupedReadPlanner` (TPFTL / LearnedFTL) — CMT hits, LearnedFTL
  model hits, and double-read misses whose prefetch-load cannot evict dirty
  mappings.  The request-locality observer (``_observe_request``) is
  replicated per accepted request, and on the miss path the prefetch depth is
  derived from the *post-observation* values before the observation is
  committed, so a refused request is left entirely unobserved for the scalar
  fallback;
* :class:`DirectReadPlanner` (ideal FTL) — every mapped read, with no
  per-request Python work at all (pure array prefix).

Write planners (single-page host writes):

* all four share one commit shape (:class:`_WriteRunPlanner`): a pure
  mutation-free scan bounds the fast run, one allocator call
  (``allocate_run``) reserves PPNs for the whole run, the programs are applied
  as one :meth:`FlashArray.program_data_many` scatter, the directory is
  updated with one :meth:`MappingDirectory.store_many` scatter, the
  per-request cache/observer/model bookkeeping replays in order, and the
  superseded copies are invalidated as one
  :meth:`FlashArray.invalidate_many` scatter.  Deferring the invalidations
  behind the programs is what makes in-run overwrites of the same LPN exact:
  by commit time the superseded in-run copy is programmed (valid), so the
  validity filter sees the same state the scalar interleave would;
* :class:`DirectWritePlanner` (ideal) — bounds-checked requests while GC
  stays quiescent;
* :class:`EntryWritePlanner` (DFTL) — additionally requires the dirty CMT
  insert not to evict (existing entry, or strictly free capacity);
* :class:`PagedWritePlanner` (TPFTL) — the two-level-CMT equivalent, sized
  with per-node overhead;
* :class:`GroupWritePlanner` (LearnedFTL) — group-allocator variant; the FTL
  only installs it when sequential initialization cannot trigger on
  single-page writes (``sequential_init_min_pages > 1``).

A planner's ``take`` returns ``(0, ...)`` — triggering one scalar fallback —
whenever the next request needs anything the fast path cannot express: GC
(data-block or translation-pool), a dirty CMT eviction, a model
inconsistency, an out-of-bounds LPN.  The fallback runs the full scalar
machinery (including raising, where the scalar path raises) and the planner
resumes after it.

LeaFTL keeps the scalar path for every request: its per-read compute charges,
frame probes and write-buffer flushes leave no mutation-free common case
worth special-casing (both planner hooks return ``None``).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.core.cmt import PAGE_NODE_OVERHEAD_ENTRIES
from repro.core.learned.inplace_model import BIT_NOT_SET
from repro.nand.flash import PAGE_VALID
from repro.ssd.request import (
    CommandKind,
    CommandPurpose,
    ReadOutcome,
    command_code,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.base import FTLBase

__all__ = [
    "DemandReadPlanner",
    "GroupedReadPlanner",
    "DirectReadPlanner",
    "DirectWritePlanner",
    "EntryWritePlanner",
    "PagedWritePlanner",
    "GroupWritePlanner",
]

_CODE_DATA_READ = command_code(CommandKind.READ, CommandPurpose.DATA_READ)
_CODE_TRANSLATION_READ = command_code(CommandKind.READ, CommandPurpose.TRANSLATION_READ)
_CODE_DATA_WRITE = command_code(CommandKind.PROGRAM, CommandPurpose.DATA_WRITE)
_OUT_CMT_HIT = ReadOutcome.CMT_HIT.code
_OUT_MODEL_HIT = ReadOutcome.MODEL_HIT.code
_OUT_DOUBLE_READ = ReadOutcome.DOUBLE_READ.code

#: Cap of TPFTL/LearnedFTL's sequential-streak counter (see ``_observe_request``).
_STREAK_CAP = 64

#: Smallest write run worth the array commit: below this the numpy scatters
#: (program/store/invalidate) cost more than the scalar requests they replace,
#: so ``take`` hands the run to the scalar fallback instead.
_MIN_WRITE_RUN = 4


class DemandReadPlanner:
    """DFTL's read-run planner: CMT hits *and* misses array-at-a-time.

    On the paper's random-read workloads DFTL misses the CMT for the vast
    majority of requests, so a hits-only fast path would leave the kernel
    scalar-bound.  A miss is fast-pathable exactly when serving it cannot emit
    translation *writes*: the insert's eviction (if any) must hit a clean LRU
    head.  A flash-resident translation page costs the usual double read; a
    never-flushed one is served like a hit (the scalar path's fresh-device
    bookkeeping).  Everything is checked per request against live state.
    """

    __slots__ = (
        "_lpns",
        "_ppns",
        "_dchips",
        "_tvpns",
        "_ok",
        "_n",
        "_pos",
        "_cmt",
        "_entries",
        "_capacity",
        "_tp_ppn",
        "_translation_store",
        "_chip_stride",
        "_page_state",
        "_flash",
        "_stats",
    )

    data_code = _CODE_DATA_READ
    trans_code = _CODE_TRANSLATION_READ

    def __init__(self, ftl: "FTLBase", lpns: np.ndarray) -> None:
        directory = ftl.directory
        flash = ftl.flash
        ppns = directory.lookup_many(lpns)
        mapped = ppns >= 0
        # Unmapped slots gather page 0's state/chip; the ``ok`` mask discards
        # them before use.
        safe = np.where(mapped, ppns, 0)
        states = np.frombuffer(flash._page_state, dtype=np.uint8)[safe]
        ok = mapped & (states == PAGE_VALID)
        self._lpns = lpns.tolist()
        self._ppns = ppns.tolist()
        self._dchips = (safe // flash._chip_stride).tolist()
        self._tvpns = (lpns // directory.mappings_per_page).tolist()
        self._ok = ok.tolist()
        self._n = len(self._lpns)
        self._pos = 0
        cmt = ftl.cmt
        self._cmt = cmt
        self._entries = cmt._entries
        self._capacity = cmt.capacity_entries
        self._tp_ppn = ftl.translation_store._tp_ppn
        self._translation_store = ftl.translation_store
        self._chip_stride = flash._chip_stride
        self._page_state = flash._page_state
        self._flash = flash
        self._stats = ftl.stats

    def take(self):
        """Process requests from the cursor while the fast-path predicate holds.

        Returns ``(k, data_chips, trans_chips, trans_count, computes)``: ``k``
        requests were completed, ``data_chips[i]`` is request ``i``'s
        data-read chip and ``trans_chips[i]`` its translation-read chip
        (``-1`` where no translation read is issued; ``None`` when none of the
        batch issues one).  ``computes`` is a per-request controller compute
        column or ``None``.
        """
        i = pos = self._pos
        n = self._n
        data_chips: list[int] = []
        trans_chips: list[int] = []
        if i >= n:
            return 0, data_chips, trans_chips, 0, None
        append_data = data_chips.append
        append_trans = trans_chips.append
        entries = self._entries
        entries_get = entries.get
        entries_values = entries.values()
        move_to_end = entries.move_to_end
        cmt_insert = self._cmt.insert
        tp_get = self._tp_ppn.get
        capacity = self._capacity
        # Reads only insert clean entries and fast-path evictions only pop
        # clean victims, so a clean cache stays clean for the rest of the run
        # and the dirty-head peek can be skipped wholesale.
        clean = self._cmt._dirty_count == 0
        lpns = self._lpns
        ppns = self._ppns
        dchips = self._dchips
        tvpns = self._tvpns
        ok = self._ok
        chip_stride = self._chip_stride
        page_state = self._page_state
        hits = 0
        misses = 0
        while i < n:
            lpn = lpns[i]
            entry = entries_get(lpn)
            if entry is not None:
                if not ok[i]:
                    # Cache/directory disagreement: let the scalar path raise.
                    break
                move_to_end(lpn)
                append_trans(-1)
                hits += 1
            else:
                ppn = ppns[i]
                if ppn < 0:
                    # Unmapped LPN: the scalar path's zero-fill bookkeeping.
                    break
                if not ok[i]:
                    # Non-valid data page: the scalar touch_read would raise.
                    break
                tp_ppn = tp_get(tvpns[i])
                if tp_ppn is not None and not page_state[tp_ppn]:
                    # PAGE_FREE translation page: scalar touch_read would raise.
                    break
                if (
                    not clean
                    and len(entries) >= capacity
                    and next(iter(entries_values))[1]
                ):
                    # The insert would evict a dirty entry (translation flush).
                    break
                # The real EntryLevelCMT.insert: at most one LRU-head pop, and
                # the checks above guarantee it is silent.
                cmt_insert(lpn, ppn)
                if tp_ppn is None:
                    # Never-flushed translation page: the mapping can only have
                    # reached flash via the CMT, so the scalar path serves it
                    # as a CMT hit without a translation read.
                    append_trans(-1)
                    hits += 1
                else:
                    append_trans(tp_ppn // chip_stride)
                    misses += 1
            append_data(dchips[i])
            i += 1
        k = i - pos
        self._pos = i
        if k:
            stats = self._stats
            stats.host_read_requests += k
            stats.host_read_pages += k
            stats.cmt_lookups += k
            stats.cmt_hits += hits
            outcome_counts = stats.outcome_counts
            outcome_counts[_OUT_CMT_HIT] += hits
            outcome_counts[_OUT_DOUBLE_READ] += misses
            # One data read per request plus one translation read per miss.
            self._flash.total_reads += k + misses
            self._translation_store.translation_reads += misses
        if misses == 0:
            trans_chips = None
        return k, data_chips, trans_chips, misses, None

    def skip(self) -> None:
        """Advance past a request the device just executed through the scalar path."""
        self._pos += 1


class GroupedReadPlanner:
    """TPFTL/LearnedFTL read-run planner: hits, model hits and double reads.

    Both designs share the two-level CMT layout and the request-locality
    observer fields, so one planner serves both; when the FTL carries in-place
    models (LearnedFTL) the miss path consults them exactly as the scalar
    ``_translate_read`` does, including the per-request compute charges.

    The observer update runs *before* translation in the scalar path, and the
    prefetch depth of a miss depends on it — so on the miss path the planner
    derives the post-observation window/streak values first, sizes the
    prefetch batch, evaluates the eviction predicate, and only then commits
    the observation and calls the real ``insert_many``.  A refused request is
    therefore left entirely unobserved for the scalar fallback.
    """

    __slots__ = (
        "_ftl",
        "_pages",
        "_lpns",
        "_tvpns",
        "_dir_ppns",
        "_n",
        "_pos",
        "_page_state",
        "_chip_stride",
        "_flash",
        "_stats",
        "_window",
        "_cmt",
        "_capacity",
        "_tp_ppn",
        "_translation_store",
        "_insert_many",
        "_directory_lookup",
        "_mappings_per_page",
        "_num_logical_pages",
        "_prefetch_ceiling",
        "_models",
        "_charge",
        "_bitmap_check_us",
        "_predict_us",
        "_vppn_to_ppn",
    )

    data_code = _CODE_DATA_READ
    trans_code = _CODE_TRANSLATION_READ

    def __init__(self, ftl: "FTLBase", lpns: np.ndarray) -> None:
        self._ftl = ftl
        directory = ftl.directory
        flash = ftl.flash
        self._pages = ftl._cmt_pages
        self._lpns = lpns.tolist()
        self._tvpns = (lpns // ftl._mappings_per_page).tolist()
        # Safe to pre-gather: no scalar read path mutates the directory.
        self._dir_ppns = directory.lookup_many(lpns).tolist()
        self._n = len(self._lpns)
        self._pos = 0
        self._page_state = flash._page_state
        self._chip_stride = flash._chip_stride
        self._flash = flash
        self._stats = ftl.stats
        self._window = ftl._recent_request_lengths.maxlen
        cmt = ftl.cmt
        self._cmt = cmt
        self._capacity = cmt.capacity_entries
        self._tp_ppn = ftl.translation_store._tp_ppn
        self._translation_store = ftl.translation_store
        self._insert_many = cmt.insert_many
        self._directory_lookup = directory.lookup
        self._mappings_per_page = ftl._mappings_per_page
        self._num_logical_pages = ftl._num_logical_pages
        self._prefetch_ceiling = ftl._prefetch_ceiling
        models = getattr(ftl, "models", None)
        self._models = models
        if models is not None:
            self._charge = ftl._charge_compute
            self._bitmap_check_us = ftl._bitmap_check_us
            self._predict_us = ftl._predict_us
            self._vppn_to_ppn = ftl._vppn_to_ppn
        else:
            self._charge = False
            self._bitmap_check_us = 0.0
            self._predict_us = 0.0
            self._vppn_to_ppn = None

    def take(self):
        """Consume the fast prefix from the cursor; see :meth:`DemandReadPlanner.take`."""
        i = pos = self._pos
        n = self._n
        if i >= n:
            return 0, [], None, 0, None
        data_chips: list[int] = []
        trans_chips: list[int] = []
        append_data = data_chips.append
        append_trans = trans_chips.append
        ftl = self._ftl
        pages = self._pages
        pages_get = pages.get
        pages_move = pages.move_to_end
        lpns = self._lpns
        tvpns = self._tvpns
        dir_ppns = self._dir_ppns
        page_state = self._page_state
        chip_stride = self._chip_stride
        cmt = self._cmt
        capacity = self._capacity
        tp_get = self._tp_ppn.get
        insert_many = self._insert_many
        directory_lookup = self._directory_lookup
        mappings_per_page = self._mappings_per_page
        num_logical_pages = self._num_logical_pages
        ceiling = self._prefetch_ceiling
        models = self._models
        stats = self._stats
        charge = self._charge
        bitmap_check_us = self._bitmap_check_us
        predict_us = self._predict_us
        vppn_to_ppn = self._vppn_to_ppn
        # A compute column is only meaningful when prediction time is charged
        # (uncharged lookups contribute exactly 0.0, which the engine treats
        # identically to no column at all).
        computes: list[float] | None = [] if charge else None
        append_compute = computes.append if computes is not None else None
        lengths = ftl._recent_request_lengths
        lengths_append = lengths.append
        window = self._window
        # The observer fields run in locals and are written back after the
        # loop; a break leaves the refused request entirely unobserved, so the
        # scalar fallback's own _observe_request applies cleanly.
        length_sum = ftl._recent_length_sum
        streak = ftl._sequential_streak
        last_end = ftl._last_lpn_end
        hits = 0
        nf_hits = 0
        misses = 0
        model_hits = 0
        model_lookups = 0
        while i < n:
            lpn = lpns[i]
            tvpn = tvpns[i]
            node = pages_get(tvpn)
            entry = None if node is None else node.get(lpn)
            if entry is not None:
                ppn = entry[0]
                if not page_state[ppn]:
                    # PAGE_FREE: the scalar path's touch_read would raise.
                    break
                # Scalar-equivalent _observe_request for a single-page request.
                if len(lengths) == window:
                    length_sum -= lengths[0]
                length_sum += 1
                lengths_append(1)
                if last_end == lpn:
                    if streak < _STREAK_CAP:
                        streak += 1
                else:
                    streak = 0
                last_end = lpn + 1
                # Scalar-equivalent PageGroupedCMT.lookup hit: entry then node LRU.
                node.move_to_end(lpn)
                pages_move(tvpn)
                append_data(ppn // chip_stride)
                append_trans(-1)
                if computes is not None:
                    append_compute(0.0)
                hits += 1
                i += 1
                continue
            # CMT miss: resolve against the (pre-gathered) directory.
            actual = dir_ppns[i]
            if actual < 0:
                # Unmapped LPN: the scalar path's zero-fill bookkeeping.
                break
            if not page_state[actual]:
                # PAGE_FREE data page: the scalar touch_read would raise.
                break
            if models is not None:
                vppn = models[tvpn].predict_exact(lpn)
                if vppn is not BIT_NOT_SET:
                    predicted = vppn_to_ppn(vppn) if vppn is not None else None
                    if predicted != actual:
                        # Bitmap/model inconsistency: the scalar path raises.
                        break
                    # Model hit: one data read, no CMT load, no prefetch.
                    if len(lengths) == window:
                        length_sum -= lengths[0]
                    length_sum += 1
                    lengths_append(1)
                    if last_end == lpn:
                        if streak < _STREAK_CAP:
                            streak += 1
                    else:
                        streak = 0
                    last_end = lpn + 1
                    model_lookups += 1
                    model_hits += 1
                    if charge:
                        stats.predict_time_us += predict_us
                        append_compute(bitmap_check_us + predict_us)
                    append_data(actual // chip_stride)
                    append_trans(-1)
                    i += 1
                    continue
            # Double read (or never-flushed CMT load).  The prefetch depth
            # depends on the post-observation window/streak, so derive those
            # without committing them yet.
            tp_ppn = tp_get(tvpn)
            if tp_ppn is not None and not page_state[tp_ppn]:
                # PAGE_FREE translation page: scalar touch_read would raise.
                break
            if len(lengths) == window:
                new_sum = length_sum + 1 - lengths[0]
                new_window = window
            else:
                new_sum = length_sum + 1
                new_window = len(lengths) + 1
            if last_end == lpn:
                new_streak = streak + 1 if streak < _STREAK_CAP else streak
            else:
                new_streak = 0
            # Scalar-equivalent inlined _prefetch_length over the post-
            # observation values (the window is never empty here).
            depth = int(round(new_sum / new_window * 2)) + 2 * new_streak
            if depth > ceiling:
                depth = ceiling
            batch = [(lpn, actual)]
            if depth > 1:
                stop = (tvpn + 1) * mappings_per_page
                if stop > num_logical_pages:
                    stop = num_logical_pages
                if lpn + depth < stop:
                    stop = lpn + depth
                for neighbour in range(lpn + 1, stop):
                    neighbour_ppn = directory_lookup(neighbour)
                    if neighbour_ppn is not None and (node is None or neighbour not in node):
                        batch.append((neighbour, neighbour_ppn))
            delta = len(batch) if node is not None else len(batch) + PAGE_NODE_OVERHEAD_ENTRIES
            if cmt._dirty_count != 0 and cmt._size_entries + delta > capacity:
                # The load could evict dirty mappings (translation flushes).
                break
            # Accepted: commit the observation, load the batch for real.
            length_sum = new_sum
            lengths_append(1)
            streak = new_streak
            last_end = lpn + 1
            insert_many(batch, dirty=False)
            if models is not None:
                model_lookups += 1
            append_data(actual // chip_stride)
            if tp_ppn is None:
                # Never-flushed translation page: served as a CMT hit.
                append_trans(-1)
                nf_hits += 1
            else:
                append_trans(tp_ppn // chip_stride)
                misses += 1
            if computes is not None:
                append_compute(bitmap_check_us)
            i += 1
        ftl._recent_length_sum = length_sum
        ftl._sequential_streak = streak
        ftl._last_lpn_end = last_end
        k = i - pos
        self._pos = i
        if k:
            stats.host_read_requests += k
            stats.host_read_pages += k
            stats.cmt_lookups += k
            cmt_hits = hits + nf_hits
            stats.cmt_hits += cmt_hits
            outcome_counts = stats.outcome_counts
            outcome_counts[_OUT_CMT_HIT] += cmt_hits
            if misses:
                outcome_counts[_OUT_DOUBLE_READ] += misses
                self._translation_store.translation_reads += misses
            if model_lookups:
                stats.model_lookups += model_lookups
                stats.predictions += model_hits
                stats.model_hits += model_hits
                outcome_counts[_OUT_MODEL_HIT] += model_hits
            # One data read per request plus one translation read per miss.
            self._flash.total_reads += k + misses
        if misses == 0:
            trans_chips = None
        return k, data_chips, trans_chips, misses, computes

    def skip(self) -> None:
        """Advance past a request the device just executed through the scalar path."""
        self._pos += 1


class DirectReadPlanner:
    """Ideal-FTL read-run planner: every mapped read, zero per-request Python.

    The ideal FTL's read path mutates nothing, so the whole plan reduces to
    array predicates at construction; :meth:`take` only slices the
    precomputed chip column up to the next unmapped (or unreadable) request.
    """

    __slots__ = ("_dchips", "_bad", "_bad_pos", "_n", "_pos", "_flash", "_stats")

    data_code = _CODE_DATA_READ
    trans_code = _CODE_TRANSLATION_READ

    def __init__(self, ftl: "FTLBase", lpns: np.ndarray) -> None:
        directory = ftl.directory
        flash = ftl.flash
        ppns = directory.lookup_many(lpns)
        mapped = ppns >= 0
        safe = np.where(mapped, ppns, 0)
        ok = mapped & (np.frombuffer(flash._page_state, dtype=np.uint8)[safe] == PAGE_VALID)
        self._dchips = (safe // flash._chip_stride).tolist()
        #: Indices the fast path must hand to the scalar fallback, ascending.
        self._bad = np.flatnonzero(~ok).tolist()
        self._bad_pos = 0
        self._n = lpns.shape[0]
        self._pos = 0
        self._flash = flash
        self._stats = ftl.stats

    def take(self):
        """Consume the mapped prefix from the cursor; see :meth:`DemandReadPlanner.take`."""
        pos = self._pos
        bad = self._bad
        bad_pos = self._bad_pos
        while bad_pos < len(bad) and bad[bad_pos] < pos:
            bad_pos += 1
        self._bad_pos = bad_pos
        end = bad[bad_pos] if bad_pos < len(bad) else self._n
        k = end - pos
        if k <= 0:
            return 0, [], None, 0, None
        data_chips = self._dchips[pos:end]
        self._pos = end
        stats = self._stats
        stats.host_read_requests += k
        stats.host_read_pages += k
        stats.cmt_lookups += k
        stats.cmt_hits += k
        stats.outcome_counts[_OUT_CMT_HIT] += k
        self._flash.total_reads += k
        return k, data_chips, None, 0, None

    def skip(self) -> None:
        """Advance past a request the device just executed through the scalar path."""
        self._pos += 1


class _WriteRunPlanner:
    """Shared core of the write-run planners.

    :meth:`take` implements the commit shape every design shares; subclasses
    provide three hooks:

    * ``_scan(pos)`` — a **pure** (mutation-free) prefix scan returning how
      many requests from ``pos`` the design's cache/bounds predicates accept;
    * ``_allocate(limit)`` — one allocator call reserving up to ``limit``
      PPNs, stopping (without GC) where the scalar path would collect;
    * ``_commit(pos, k, ppns)`` — the per-request cache/observer/model
      bookkeeping, replayed in request order.

    Commit order vs. the scalar interleave: the scalar path alternates
    invalidate -> GC-check -> allocate -> update -> program -> cache per
    request, while :meth:`take` applies programs, then directory updates, then
    cache bookkeeping, then the deferred invalidations, for the whole run.
    Every reordered pair commutes: allocation only consumes ``PAGE_FREE``
    pages, so invalidating a superseded (valid) copy neither enables nor
    blocks it; the GC predicate is re-checked per page inside
    ``allocate_run``; and programming *before* installing the new directory
    entries means an in-run overwrite's superseded copy is valid by the time
    the validity filter runs — exactly as it was at the scalar invalidation
    point.
    """

    __slots__ = (
        "_lpns_arr",
        "_lpns",
        "_n",
        "_pos",
        "_ftl",
        "_flash",
        "_chip_stride",
        "_state_view",
        "_directory",
        "_stats",
        "_num_logical_pages",
        "_pool",
    )

    #: Command code of every program the fast path issues (host data writes).
    program_code = _CODE_DATA_WRITE

    def __init__(self, ftl: "FTLBase", lpns: np.ndarray) -> None:
        self._lpns_arr = lpns
        self._lpns = lpns.tolist()
        self._n = lpns.shape[0]
        self._pos = 0
        self._ftl = ftl
        flash = ftl.flash
        self._flash = flash
        self._chip_stride = flash._chip_stride
        self._state_view = np.frombuffer(flash._page_state, dtype=np.uint8)
        self._directory = ftl.directory
        self._stats = ftl.stats
        self._num_logical_pages = ftl.geometry.num_logical_pages
        self._pool = ftl.allocator.translation_pool

    def take(self):
        """Serve the acceptable prefix from the cursor as one batched commit.

        Returns ``(k, chips)``: ``k`` single-page writes were completed and
        ``chips[i]`` is the chip request ``i``'s program serializes on.
        """
        pos = self._pos
        if pos >= self._n:
            return 0, []
        if self._pool.needs_gc():
            # Translation-pool GC pending: the scalar fallback's own
            # translation-GC hook services it, then batching resumes.
            return 0, []
        if not self._can_allocate():
            # Below the GC threshold: allocate_run would return nothing, so
            # skip the (O(run)) scan and let the scalar fallback collect.
            # Without this check a GC-bound run rescans its tail after every
            # fallback — O(run^2) for zero committed requests.
            return 0, []
        limit = self._scan(pos)
        if limit < _MIN_WRITE_RUN:
            # Too short to amortize the array scatters (or nothing accepted):
            # the scalar fallback serves these faster.
            return 0, []
        ppns = self._allocate(limit)
        k = len(ppns)
        if k == 0:
            # Free space is below the GC threshold: the scalar fallback
            # collects, then batching resumes.
            return 0, []
        end = pos + k
        lpns_arr = self._lpns_arr[pos:end]
        ppns_arr = np.asarray(ppns, dtype=np.int64)
        flash = self._flash
        # Programs first: an in-run overwrite's superseded copy must be
        # programmed (valid) before old mappings are resolved below.
        flash.program_data_many(ppns_arr, lpns_arr)
        state = self._state_view
        directory = self._directory
        if int(np.unique(lpns_arr).size) == k:
            old = directory.store_many(lpns_arr, ppns_arr)
            stale = old[old >= 0]
            stale = stale[state[stale] == PAGE_VALID]
        else:
            # In-run overwrites of the same LPN: store_many's gather-before-
            # scatter would return the pre-run mapping for both copies, so
            # update per request — each observing the previous one's mapping,
            # exactly as the scalar interleave does.
            update = directory.update
            lpns = self._lpns
            collected = []
            for j in range(k):
                previous = update(lpns[pos + j], ppns[j])
                if previous is not None and state[previous] == PAGE_VALID:
                    collected.append(previous)
            stale = np.asarray(collected, dtype=np.int64)
        self._commit(pos, k, ppns)
        if stale.size:
            flash.invalidate_many(stale)
        stats = self._stats
        stats.host_write_requests += k
        stats.host_write_pages += k
        self._pos = end
        return k, (ppns_arr // self._chip_stride).tolist()

    def _can_allocate(self) -> bool:
        raise NotImplementedError

    def _scan(self, pos: int) -> int:
        raise NotImplementedError

    def _allocate(self, limit: int) -> list[int]:
        raise NotImplementedError

    def _commit(self, pos: int, k: int, ppns: list[int]) -> None:
        raise NotImplementedError

    def skip(self) -> None:
        """Advance past a request the device just executed through the scalar path."""
        self._pos += 1


class DirectWritePlanner(_WriteRunPlanner):
    """Ideal-FTL write-run planner: every in-bounds write while GC is quiescent.

    The ideal FTL has no mapping cache, so the scan reduces to the bounds
    check and ``_commit`` is a no-op; the striping allocator's ``allocate_run``
    enforces the per-request GC threshold exactly as ``_maybe_gc`` would.
    """

    __slots__ = ("_allocator", "_min_free_blocks")

    def __init__(self, ftl: "FTLBase", lpns: np.ndarray) -> None:
        super().__init__(ftl, lpns)
        self._allocator = ftl.allocator
        self._min_free_blocks = ftl._gc_threshold_blocks

    def _can_allocate(self) -> bool:
        return self._allocator.free_data_blocks() >= self._min_free_blocks

    def _scan(self, pos: int) -> int:
        lpns = self._lpns
        n = self._n
        num_logical_pages = self._num_logical_pages
        i = pos
        while i < n:
            lpn = lpns[i]
            if lpn < 0 or lpn >= num_logical_pages:
                # Out-of-bounds LPN: the scalar check_lpn raises.
                break
            i += 1
        return i - pos

    def _allocate(self, limit: int) -> list[int]:
        return self._allocator.allocate_run(limit, self._min_free_blocks)

    def _commit(self, pos: int, k: int, ppns: list[int]) -> None:
        pass


class EntryWritePlanner(DirectWritePlanner):
    """DFTL's write-run planner: dirty CMT inserts that cannot evict.

    A write inserts its mapping dirty; evicting for room can flush a dirty
    victim's translation page, so the scan accepts a request only when its
    LPN is already cached (in the live cache or earlier in the accepted
    prefix) or the cache has strictly free capacity.
    """

    __slots__ = ("_cmt", "_entries", "_capacity")

    def __init__(self, ftl: "FTLBase", lpns: np.ndarray) -> None:
        super().__init__(ftl, lpns)
        cmt = ftl.cmt
        self._cmt = cmt
        self._entries = cmt._entries
        self._capacity = cmt.capacity_entries

    def _scan(self, pos: int) -> int:
        lpns = self._lpns
        n = self._n
        num_logical_pages = self._num_logical_pages
        entries = self._entries
        capacity = self._capacity
        size = len(entries)
        pending: set[int] = set()
        pending_add = pending.add
        i = pos
        while i < n:
            lpn = lpns[i]
            if lpn < 0 or lpn >= num_logical_pages:
                break
            if lpn not in entries and lpn not in pending:
                if size >= capacity:
                    # The insert's eviction loop would fire.
                    break
                pending_add(lpn)
                size += 1
            i += 1
        return i - pos

    def _commit(self, pos: int, k: int, ppns: list[int]) -> None:
        # The real EntryLevelCMT.insert: the scan guarantees no evictions, so
        # this is exactly the scalar _after_write without the (empty) flush.
        insert = self._cmt.insert
        lpns = self._lpns
        for j in range(k):
            insert(lpns[pos + j], ppns[j], dirty=True)


class PagedWritePlanner(DirectWritePlanner):
    """TPFTL's write-run planner: observer replay plus eviction-free inserts.

    The two-level CMT charges :data:`PAGE_NODE_OVERHEAD_ENTRIES` extra units
    for a fresh translation-page node, so the scan tracks per-node pending
    membership to size each insert's delta exactly.
    """

    __slots__ = ("_cmt", "_pages", "_capacity", "_mappings_per_page", "_window")

    def __init__(self, ftl: "FTLBase", lpns: np.ndarray) -> None:
        super().__init__(ftl, lpns)
        self._bind_paged_cmt(ftl)

    def _bind_paged_cmt(self, ftl: "FTLBase") -> None:
        cmt = ftl.cmt
        self._cmt = cmt
        self._pages = cmt._pages
        self._capacity = cmt.capacity_entries
        self._mappings_per_page = ftl._mappings_per_page
        self._window = ftl._recent_request_lengths.maxlen

    def _scan(self, pos: int) -> int:
        lpns = self._lpns
        n = self._n
        num_logical_pages = self._num_logical_pages
        pages_get = self._pages.get
        capacity = self._capacity
        mappings_per_page = self._mappings_per_page
        size = self._cmt._size_entries
        pending: dict[int, set[int]] = {}
        i = pos
        while i < n:
            lpn = lpns[i]
            if lpn < 0 or lpn >= num_logical_pages:
                break
            tvpn = lpn // mappings_per_page
            node = pages_get(tvpn)
            pend = pending.get(tvpn)
            if (node is not None and lpn in node) or (pend is not None and lpn in pend):
                delta = 0
            elif node is not None or pend is not None:
                delta = 1
            else:
                delta = PAGE_NODE_OVERHEAD_ENTRIES + 1
            if delta:
                if size + delta > capacity:
                    # The insert would trigger _evict_until_fits.
                    break
                size += delta
                if pend is None:
                    pend = set()
                    pending[tvpn] = pend
                pend.add(lpn)
            i += 1
        return i - pos

    def _commit(self, pos: int, k: int, ppns: list[int]) -> None:
        ftl = self._ftl
        insert = self._cmt.insert
        lpns = self._lpns
        lengths = ftl._recent_request_lengths
        lengths_append = lengths.append
        window = self._window
        length_sum = ftl._recent_length_sum
        streak = ftl._sequential_streak
        last_end = ftl._last_lpn_end
        for j in range(k):
            lpn = lpns[pos + j]
            # Scalar-equivalent _observe_request for a single-page request.
            if len(lengths) == window:
                length_sum -= lengths[0]
            length_sum += 1
            lengths_append(1)
            if last_end == lpn:
                if streak < _STREAK_CAP:
                    streak += 1
            else:
                streak = 0
            last_end = lpn + 1
            # The real insert: the scan guarantees no evictions.
            insert(lpn, ppns[j], dirty=True)
        ftl._recent_length_sum = length_sum
        ftl._sequential_streak = streak
        ftl._last_lpn_end = last_end


class GroupWritePlanner(PagedWritePlanner):
    """LearnedFTL's write-run planner: group allocation plus model consistency.

    The scan is the paged-CMT scan plus the bounds check, additionally
    recording each request's allocation group; the allocator's
    ``allocate_run`` walks those groups one page at a time, stopping (without
    proactive GC or borrowing) exactly where the scalar ``_allocate_for_lpn``
    would deviate from a plain own-stripe allocation.  The commit clears each
    written LPN's bitmap bit, as the scalar write path does between program
    and CMT insert.

    The FTL only installs this planner when single-page writes cannot trigger
    sequential initialization (``sequential_init_min_pages > 1``), so model
    *training* never happens on the fast path.
    """

    __slots__ = ("_allocator_group", "_min_free_pages", "_models", "_groups")

    def __init__(self, ftl: "FTLBase", lpns: np.ndarray) -> None:
        _WriteRunPlanner.__init__(self, ftl, lpns)
        self._bind_paged_cmt(ftl)
        allocator = ftl.allocator
        self._allocator_group = allocator
        # The scalar proactive-GC threshold of _allocate_for_lpn.
        self._min_free_pages = allocator.lpns_per_group + allocator.stripe_map.pages_per_stripe
        self._models = ftl.models
        self._groups: list[int] = []

    def _can_allocate(self) -> bool:
        return self._allocator_group.total_free_pages() >= self._min_free_pages

    def _scan(self, pos: int) -> int:
        lpns = self._lpns
        n = self._n
        num_logical_pages = self._num_logical_pages
        pages_get = self._pages.get
        capacity = self._capacity
        mappings_per_page = self._mappings_per_page
        group_of_lpn = self._allocator_group.group_of_lpn
        size = self._cmt._size_entries
        pending: dict[int, set[int]] = {}
        groups = self._groups
        groups.clear()
        groups_append = groups.append
        i = pos
        while i < n:
            lpn = lpns[i]
            if lpn < 0 or lpn >= num_logical_pages:
                break
            tvpn = lpn // mappings_per_page
            node = pages_get(tvpn)
            pend = pending.get(tvpn)
            if (node is not None and lpn in node) or (pend is not None and lpn in pend):
                delta = 0
            elif node is not None or pend is not None:
                delta = 1
            else:
                delta = PAGE_NODE_OVERHEAD_ENTRIES + 1
            if delta:
                if size + delta > capacity:
                    break
                size += delta
                if pend is None:
                    pend = set()
                    pending[tvpn] = pend
                pend.add(lpn)
            groups_append(group_of_lpn(lpn))
            i += 1
        return i - pos

    def _allocate(self, limit: int) -> list[int]:
        return self._allocator_group.allocate_run(self._groups, limit, self._min_free_pages)

    def _commit(self, pos: int, k: int, ppns: list[int]) -> None:
        ftl = self._ftl
        insert = self._cmt.insert
        models = self._models
        lpns = self._lpns
        mappings_per_page = self._mappings_per_page
        lengths = ftl._recent_request_lengths
        lengths_append = lengths.append
        window = self._window
        length_sum = ftl._recent_length_sum
        streak = ftl._sequential_streak
        last_end = ftl._last_lpn_end
        for j in range(k):
            lpn = lpns[pos + j]
            if len(lengths) == window:
                length_sum -= lengths[0]
            length_sum += 1
            lengths_append(1)
            if last_end == lpn:
                if streak < _STREAK_CAP:
                    streak += 1
            else:
                streak = 0
            last_end = lpn + 1
            # Consistency (Section III-B): the overwritten LPN's bitmap bit is
            # cleared once the new mapping is installed.
            models[lpn // mappings_per_page].invalidate(lpn)
            insert(lpn, ppns[j], dirty=True)
        ftl._recent_length_sum = length_sum
        ftl._sequential_streak = streak
        ftl._last_lpn_end = last_end
