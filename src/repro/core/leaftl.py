"""LeaFTL: a purely learned-index FTL (the paper's main learned baseline).

Reference: Sun et al., "LeaFTL: A Learning-based Flash Translation Layer for
Solid-State Drives" (ASPLOS'23), as re-implemented by the LearnedFTL authors
inside FEMU (Section IV-A): the write path follows TPFTL's dynamic allocation,
the virtual-PPN representation is used to obtain trainable mappings, and the
mapping cache is replaced by a *model cache* over learned segments.

Behavioural properties reproduced here (Sections II-C and II-D):

* mappings of recent writes live in a bounded data/model buffer; when it fills,
  the mappings are sorted by LPN, greedy-PLR segments are trained per
  translation page and flushed into a per-translation-page log-structured
  segment table (LSMT);
* the model cache holds the segments of the most recently used translation
  pages within the same DRAM budget as the other FTLs' CMT;
* an *accurate* segment hit resolves a read with a single flash read; an
  *approximate* segment may mispredict, which costs an extra probe read of the
  mispredicted page (its OOB holds the error interval) — a double read; a model
  cache miss adds a translation read on top, making mispredictions **triple
  reads** (Figure 5).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.base import FTLConfig, StripingFTLBase
from repro.core.learned.segment import (
    LearnedSegment,
    LogStructuredSegmentTable,
    build_segments,
    pack_tables,
    unpack_tables,
)
from repro.nand.geometry import SSDGeometry
from repro.nand.timing import TimingModel
from repro.ssd.request import HostRequest, OpType, ReadOutcome, Stage, Transaction
from repro.ssd.stats import SimulationStats

__all__ = ["LeaFTL"]

_OUT_BUFFER_HIT = ReadOutcome.BUFFER_HIT.code
_OUT_MODEL_HIT = ReadOutcome.MODEL_HIT.code
_OUT_DOUBLE_READ = ReadOutcome.DOUBLE_READ.code
_OUT_TRIPLE_READ = ReadOutcome.TRIPLE_READ.code


class LeaFTL(StripingFTLBase):
    """Learned-segment FTL with a model cache and log-structured segment tables."""

    name = "leaftl"
    description = "LeaFTL: learned segments + LSMT + model cache (no CMT)."

    def __init__(
        self,
        geometry: SSDGeometry,
        *,
        timing: TimingModel | None = None,
        config: FTLConfig | None = None,
        stats: SimulationStats | None = None,
    ) -> None:
        super().__init__(geometry, timing=timing, config=config, stats=stats)
        self._tables: dict[int, LogStructuredSegmentTable] = {}
        self._buffer: dict[int, int] = {}
        # The paper-default 2048-page buffer would swallow an entire tiny test
        # device, so cap it at a fraction of the logical space.
        self._buffer_capacity = max(
            8, min(self.config.leaftl_buffer_pages, geometry.num_logical_pages // 8)
        )
        self._model_cache: OrderedDict[int, int] = OrderedDict()  # tvpn -> cached bytes
        self._cache_capacity_bytes = self.config.cmt_entries(geometry) * 8
        self._cache_bytes = 0

    # ------------------------------------------------------------------ read
    def read(self, request: HostRequest, now: float) -> None:
        buffer = self.buffer
        translation_stage = buffer.new_stage()
        probe_stage = buffer.new_stage()
        data_stage = buffer.new_stage()
        lookup = self._lookup
        add_outcome = buffer.outcome_codes.append
        for lpn in request.lpns():
            outcome_code, data_ppn = lookup(lpn, translation_stage, probe_stage)
            add_outcome(outcome_code)
            if data_ppn is not None:
                self.data_read_command(data_stage, data_ppn)
        buffer.commit_stage(translation_stage)
        buffer.commit_stage(probe_stage)
        buffer.commit_stage(data_stage)

    def _lookup(self, lpn: int, translation_stage: list, probe_stage: list) -> tuple[int, int | None]:
        """Resolve one LPN, appending translation/probe reads to their stages.

        Returns ``(outcome_code, data_ppn)``.
        """
        self.stats.cmt_lookups += 1
        buffered = self._buffer.get(lpn)
        if buffered is not None:
            self.stats.cmt_hits += 1
            return _OUT_BUFFER_HIT, buffered
        actual = self.directory.lookup(lpn)
        if actual is None:
            return _OUT_BUFFER_HIT, None
        tvpn = self.directory.tvpn_of(lpn)
        cache_hit = tvpn in self._model_cache
        fetched_translation = False
        if cache_hit:
            self.stats.cmt_hits += 1
            self._model_cache.move_to_end(tvpn)
        else:
            fetched_translation = self.translation_store.read_into(
                self.buffer, translation_stage, tvpn
            )
            self._admit_to_cache(tvpn)
        segment = self._segment_for(tvpn, lpn)
        self.stats.model_lookups += 1
        predicted_ppn = self._predict_ppn(segment, lpn)
        correct = predicted_ppn == actual
        if correct:
            self.stats.model_hits += 1
        if not correct and predicted_ppn is not None:
            self.probe_read_command(probe_stage, predicted_ppn)
        if correct and cache_hit:
            outcome = _OUT_MODEL_HIT
        elif correct or (cache_hit and not correct):
            outcome = _OUT_DOUBLE_READ
        else:
            outcome = _OUT_TRIPLE_READ
        if not correct and predicted_ppn is None and fetched_translation:
            # No segment covered the LPN at all: the translation read plus the
            # data read is an ordinary double read.
            outcome = _OUT_DOUBLE_READ
        return outcome, actual

    def _segment_for(self, tvpn: int, lpn: int) -> LearnedSegment | None:
        table = self._tables.get(tvpn)
        if table is None:
            return None
        return table.lookup(lpn)

    def _predict_ppn(self, segment: LearnedSegment | None, lpn: int) -> int | None:
        if segment is None:
            return None
        vppn = segment.predict(lpn)
        vppn = max(0, min(self.geometry.num_physical_pages - 1, vppn))
        return self.codec.vppn_to_ppn(vppn)

    # ----------------------------------------------------------------- write
    def _after_write(self, written, now):
        for lpn, ppn in written:
            self._buffer[lpn] = ppn
        if len(self._buffer) >= self._buffer_capacity:
            self._flush_buffer()

    def _after_gc_move(self, moved):
        # GC relocations change mappings that may be modelled by stale segments;
        # feed them back through the buffer so they are re-learned.
        for lpn, ppn in moved:
            self._buffer[lpn] = ppn

    def flush_buffer(self) -> Transaction:
        """Force a training/flush cycle of the mapping buffer (used by tests).

        Returns a :class:`Transaction` view of the flash work the flush
        emitted so standalone callers can execute it against a timing engine
        (during normal request processing the flush rides inside the
        request's own command buffer and is executed with it).
        """
        command_buffer = self.buffer
        stages_before = len(command_buffer.stages)
        self._flush_buffer()
        request = command_buffer.request or HostRequest(op=OpType.WRITE, lpn=0, npages=0)
        txn = Transaction(request)
        for record in command_buffer.stages[stages_before:]:
            txn.stages.append(
                Stage(commands=command_buffer.commands_of(record), compute_us=record[0])
            )
        return txn

    def _flush_buffer(self) -> None:
        if not self._buffer:
            return
        grouped: dict[int, list[tuple[int, int]]] = {}
        for lpn, ppn in self._buffer.items():
            grouped.setdefault(self.directory.tvpn_of(lpn), []).append((lpn, ppn))
        compute_us = 0.0
        command_buffer = self.buffer
        stage = command_buffer.new_stage()
        for tvpn, pairs in sorted(grouped.items()):
            pairs.sort(key=lambda item: item[0])
            lpns = [lpn for lpn, _ in pairs]
            vppns = [self.codec.ppn_to_vppn(ppn) for _, ppn in pairs]
            segments = build_segments(lpns, vppns, gamma=self.config.leaftl_gamma)
            table = self._tables.setdefault(tvpn, LogStructuredSegmentTable())
            table.insert_many(segments)
            table.compact()
            compute_us += self.timing.sort_us_per_entry + self.timing.train_us_per_entry
            self.stats.sort_time_us += self.timing.sort_us_per_entry
            self.stats.train_time_us += self.timing.train_us_per_entry
            self.stats.models_trained += len(segments)
            if self.allocator.translation_pool.needs_gc():
                self._collect_translation_block_into(stage)
            self.translation_store.flush_into(command_buffer, stage, tvpn)
            if tvpn in self._model_cache:
                self._refresh_cache_entry(tvpn)
        self._buffer.clear()
        command_buffer.commit_stage(stage, compute_us)

    # ------------------------------------------------------------ model cache
    def _admit_to_cache(self, tvpn: int) -> None:
        size = self._table_bytes(tvpn)
        self._model_cache[tvpn] = size
        self._cache_bytes += size
        while self._cache_bytes > self._cache_capacity_bytes and len(self._model_cache) > 1:
            victim, victim_size = self._model_cache.popitem(last=False)
            self._cache_bytes -= victim_size

    def _refresh_cache_entry(self, tvpn: int) -> None:
        old = self._model_cache.pop(tvpn, 0)
        self._cache_bytes -= old
        self._admit_to_cache(tvpn)

    def _table_bytes(self, tvpn: int) -> int:
        table = self._tables.get(tvpn)
        return table.memory_bytes() if table is not None else 0

    # ------------------------------------------------------------- reporting
    def segment_count(self) -> int:
        """Total learned segments across all translation pages."""
        return sum(table.segment_count() for table in self._tables.values())

    def memory_report(self) -> dict[str, int]:
        """Bytes used by the model cache and the write/training buffer."""
        return {
            "model_cache_bytes": self._cache_bytes,
            "buffer_bytes": len(self._buffer) * 8,
            "all_segments_bytes": sum(t.memory_bytes() for t in self._tables.values()),
        }

    # ------------------------------------------------------ snapshot support
    def state_dict(self) -> dict:
        state = super().state_dict()
        state["tables"] = pack_tables(self._tables)
        state["write_buffer"] = [[lpn, ppn] for lpn, ppn in self._buffer.items()]
        state["model_cache"] = [[tvpn, size] for tvpn, size in self._model_cache.items()]
        state["cache_bytes"] = self._cache_bytes
        return state

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._tables = unpack_tables(state["tables"])
        self._buffer = {lpn: ppn for lpn, ppn in state["write_buffer"]}
        self._model_cache.clear()
        for tvpn, size in state["model_cache"]:
            self._model_cache[tvpn] = size
        self._cache_bytes = int(state["cache_bytes"])
