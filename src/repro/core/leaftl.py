"""LeaFTL: a purely learned-index FTL (the paper's main learned baseline).

Reference: Sun et al., "LeaFTL: A Learning-based Flash Translation Layer for
Solid-State Drives" (ASPLOS'23), as re-implemented by the LearnedFTL authors
inside FEMU (Section IV-A): the write path follows TPFTL's dynamic allocation,
the virtual-PPN representation is used to obtain trainable mappings, and the
mapping cache is replaced by a *model cache* over learned segments.

Behavioural properties reproduced here (Sections II-C and II-D):

* mappings of recent writes live in a bounded data/model buffer; when it fills,
  the mappings are sorted by LPN, greedy-PLR segments are trained per
  translation page and flushed into a per-translation-page log-structured
  segment table (LSMT);
* the model cache holds the segments of the most recently used translation
  pages within the same DRAM budget as the other FTLs' CMT;
* an *accurate* segment hit resolves a read with a single flash read; an
  *approximate* segment may mispredict, which costs an extra probe read of the
  mispredicted page (its OOB holds the error interval) — a double read; a model
  cache miss adds a translation read on top, making mispredictions **triple
  reads** (Figure 5).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.core.base import FTLConfig, StripingFTLBase
from repro.core.learned.segment import LearnedSegment, LogStructuredSegmentTable, build_segments
from repro.nand.geometry import SSDGeometry
from repro.nand.timing import TimingModel
from repro.ssd.request import (
    FlashCommand,
    HostRequest,
    OpType,
    ReadOutcome,
    Transaction,
)
from repro.ssd.stats import SimulationStats

__all__ = ["LeaFTL"]


class LeaFTL(StripingFTLBase):
    """Learned-segment FTL with a model cache and log-structured segment tables."""

    name = "leaftl"
    description = "LeaFTL: learned segments + LSMT + model cache (no CMT)."

    def __init__(
        self,
        geometry: SSDGeometry,
        *,
        timing: TimingModel | None = None,
        config: FTLConfig | None = None,
        stats: SimulationStats | None = None,
    ) -> None:
        super().__init__(geometry, timing=timing, config=config, stats=stats)
        self._tables: dict[int, LogStructuredSegmentTable] = {}
        self._buffer: dict[int, int] = {}
        # The paper-default 2048-page buffer would swallow an entire tiny test
        # device, so cap it at a fraction of the logical space.
        self._buffer_capacity = max(
            8, min(self.config.leaftl_buffer_pages, geometry.num_logical_pages // 8)
        )
        self._model_cache: OrderedDict[int, int] = OrderedDict()  # tvpn -> cached bytes
        self._cache_capacity_bytes = self.config.cmt_entries(geometry) * 8
        self._cache_bytes = 0

    # ------------------------------------------------------------------ read
    def read(self, request: HostRequest, now: float) -> Transaction:
        txn = Transaction(request)
        translation_cmds: list[FlashCommand] = []
        probe_cmds: list[FlashCommand] = []
        data_cmds: list[FlashCommand] = []
        for lpn in request.lpns():
            outcome, t_cmd, probe_cmd, data_ppn = self._lookup(lpn)
            txn.outcomes.append(outcome)
            if t_cmd is not None:
                translation_cmds.append(t_cmd)
            if probe_cmd is not None:
                probe_cmds.append(probe_cmd)
            if data_ppn is not None:
                data_cmds.append(self.data_read_command(data_ppn))
        txn.add_stage(translation_cmds)
        txn.add_stage(probe_cmds)
        txn.add_stage(data_cmds)
        return txn

    def _lookup(
        self, lpn: int
    ) -> tuple[ReadOutcome, FlashCommand | None, FlashCommand | None, int | None]:
        """Resolve one LPN; returns (outcome, translation cmd, probe cmd, data ppn)."""
        self.stats.cmt_lookups += 1
        buffered = self._buffer.get(lpn)
        if buffered is not None:
            self.stats.cmt_hits += 1
            return ReadOutcome.BUFFER_HIT, None, None, buffered
        actual = self.directory.lookup(lpn)
        if actual is None:
            return ReadOutcome.BUFFER_HIT, None, None, None
        tvpn = self.directory.tvpn_of(lpn)
        cache_hit = tvpn in self._model_cache
        translation_cmd: FlashCommand | None = None
        if cache_hit:
            self.stats.cmt_hits += 1
            self._model_cache.move_to_end(tvpn)
        else:
            translation_cmd = self.translation_store.read_command(tvpn)
            self._admit_to_cache(tvpn)
        segment = self._segment_for(tvpn, lpn)
        self.stats.model_lookups += 1
        predicted_ppn = self._predict_ppn(segment, lpn)
        correct = predicted_ppn == actual
        if correct:
            self.stats.model_hits += 1
        probe_cmd: FlashCommand | None = None
        if not correct and predicted_ppn is not None:
            probe_cmd = self.probe_read_command(predicted_ppn)
        if correct and cache_hit:
            outcome = ReadOutcome.MODEL_HIT
        elif correct or (cache_hit and not correct):
            outcome = ReadOutcome.DOUBLE_READ
        else:
            outcome = ReadOutcome.TRIPLE_READ
        if not correct and predicted_ppn is None and translation_cmd is not None:
            # No segment covered the LPN at all: the translation read plus the
            # data read is an ordinary double read.
            outcome = ReadOutcome.DOUBLE_READ
        return outcome, translation_cmd, probe_cmd, actual

    def _segment_for(self, tvpn: int, lpn: int) -> LearnedSegment | None:
        table = self._tables.get(tvpn)
        if table is None:
            return None
        return table.lookup(lpn)

    def _predict_ppn(self, segment: LearnedSegment | None, lpn: int) -> int | None:
        if segment is None:
            return None
        vppn = segment.predict(lpn)
        vppn = max(0, min(self.geometry.num_physical_pages - 1, vppn))
        return self.codec.vppn_to_ppn(vppn)

    # ----------------------------------------------------------------- write
    def _after_write(self, written, txn, now):
        for lpn, ppn in written:
            self._buffer[lpn] = ppn
        if len(self._buffer) >= self._buffer_capacity:
            self._flush_buffer(txn)

    def _after_gc_move(self, moved):
        # GC relocations change mappings that may be modelled by stale segments;
        # feed them back through the buffer so they are re-learned.
        for lpn, ppn in moved:
            self._buffer[lpn] = ppn

    def flush_buffer(self, txn: Transaction | None = None) -> Transaction:
        """Force a training/flush cycle of the mapping buffer (used by tests)."""
        if txn is None:
            txn = Transaction(HostRequest(op=OpType.WRITE, lpn=0, npages=0))
        self._flush_buffer(txn)
        return txn

    def _flush_buffer(self, txn: Transaction) -> None:
        if not self._buffer:
            return
        grouped: dict[int, list[tuple[int, int]]] = {}
        for lpn, ppn in self._buffer.items():
            grouped.setdefault(self.directory.tvpn_of(lpn), []).append((lpn, ppn))
        compute_us = 0.0
        translation_cmds: list[FlashCommand] = []
        for tvpn, pairs in sorted(grouped.items()):
            pairs.sort(key=lambda item: item[0])
            lpns = [lpn for lpn, _ in pairs]
            vppns = [self.codec.ppn_to_vppn(ppn) for _, ppn in pairs]
            segments = build_segments(lpns, vppns, gamma=self.config.leaftl_gamma)
            table = self._tables.setdefault(tvpn, LogStructuredSegmentTable())
            table.insert_many(segments)
            table.compact()
            compute_us += self.timing.sort_us_per_entry + self.timing.train_us_per_entry
            self.stats.sort_time_us += self.timing.sort_us_per_entry
            self.stats.train_time_us += self.timing.train_us_per_entry
            self.stats.models_trained += len(segments)
            if self.allocator.translation_pool.needs_gc():
                translation_cmds.extend(self._collect_translation_block())
            translation_cmds.extend(self.translation_store.flush(tvpn))
            if tvpn in self._model_cache:
                self._refresh_cache_entry(tvpn)
        self._buffer.clear()
        txn.add_stage(translation_cmds, compute_us=compute_us)

    # ------------------------------------------------------------ model cache
    def _admit_to_cache(self, tvpn: int) -> None:
        size = self._table_bytes(tvpn)
        self._model_cache[tvpn] = size
        self._cache_bytes += size
        while self._cache_bytes > self._cache_capacity_bytes and len(self._model_cache) > 1:
            victim, victim_size = self._model_cache.popitem(last=False)
            self._cache_bytes -= victim_size

    def _refresh_cache_entry(self, tvpn: int) -> None:
        old = self._model_cache.pop(tvpn, 0)
        self._cache_bytes -= old
        self._admit_to_cache(tvpn)

    def _table_bytes(self, tvpn: int) -> int:
        table = self._tables.get(tvpn)
        return table.memory_bytes() if table is not None else 0

    # ------------------------------------------------------------- reporting
    def segment_count(self) -> int:
        """Total learned segments across all translation pages."""
        return sum(table.segment_count() for table in self._tables.values())

    def memory_report(self) -> dict[str, int]:
        """Bytes used by the model cache and the write/training buffer."""
        return {
            "model_cache_bytes": self._cache_bytes,
            "buffer_bytes": len(self._buffer) * 8,
            "all_segments_bytes": sum(t.memory_bytes() for t in self._tables.values()),
        }
