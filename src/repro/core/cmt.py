"""Cached mapping tables (CMTs).

Two CMT organizations are provided:

* :class:`EntryLevelCMT` — the classic DFTL cache: an LRU over individual
  LPN->PPN entries.  Each dirty eviction forces a read-modify-write of the
  victim entry's translation page.

* :class:`PageGroupedCMT` — the TPFTL-style two-level cache: entries are
  grouped under their translation page, recency is tracked per translation
  page, and eviction writes back a whole translation page's dirty entries at
  once.  It also supports the prefetching that TPFTL's workload-adaptive
  loading policy performs on a miss.

Capacity is expressed in *entries* so experiments can size the cache as a
percentage of the full mapping table, exactly as the paper does (3 % for
DFTL/TPFTL/LeaFTL, 1.5 % for LearnedFTL).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Iterable, NamedTuple

import numpy as np

from repro.nand.errors import ConfigurationError

__all__ = ["CMTEntry", "EvictedPage", "EntryLevelCMT", "PageGroupedCMT"]

#: In-memory overhead (expressed in mapping-entry units) charged per cached
#: translation-page node in the two-level CMT.  TPFTL's node header holds the
#: TVPN, a pointer and LRU links; two 8-byte entries is a fair approximation.
PAGE_NODE_OVERHEAD_ENTRIES = 2


@dataclass(slots=True)
class CMTEntry:
    """One cached LPN -> PPN mapping.

    Documents the logical schema of a cache slot; the caches below store the
    equivalent ``[ppn, dirty]`` list internally because slots are created and
    discarded millions of times per simulated run.
    """

    ppn: int
    dirty: bool = False


class EvictedPage(NamedTuple):
    """Dirty mappings evicted together, grouped by translation page."""

    tvpn: int
    dirty_lpns: tuple[int, ...]


class EntryLevelCMT:
    """DFTL's entry-granularity LRU mapping cache."""

    def __init__(self, capacity_entries: int, mappings_per_page: int) -> None:
        if capacity_entries <= 0:
            raise ConfigurationError("CMT capacity must be at least one entry")
        self.capacity_entries = capacity_entries
        self.mappings_per_page = mappings_per_page
        # lpn -> [ppn, dirty]
        self._entries: OrderedDict[int, list] = OrderedDict()
        # Count of entries with the dirty bit set, maintained by every mutation
        # below.  The batched read planner consults it: when zero, any eviction
        # a fast-path insert causes is silent (no translation-page flush), so a
        # whole run of clean misses can bypass the scalar path.
        self._dirty_count = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, lpn: int) -> bool:
        return lpn in self._entries

    @property
    def dirty_entry_count(self) -> int:
        """Number of cached entries whose dirty bit is set."""
        return self._dirty_count

    def lookup(self, lpn: int) -> int | None:
        """Return the cached PPN of an LPN (refreshing recency) or ``None``."""
        entry = self._entries.get(lpn)
        if entry is None:
            return None
        self._entries.move_to_end(lpn)
        return entry[0]

    def probe_many(self, lpns: "np.ndarray | list[int]") -> np.ndarray:
        """Batch-probe: cached PPN per LPN, ``-1`` on miss, **no recency update**.

        The read-only counterpart of calling :meth:`lookup` per element; the
        batched kernel and its tests use it to resolve hit-path translations
        for a whole request array without perturbing the LRU order.
        """
        get = self._entries.get
        lpns = lpns.tolist() if isinstance(lpns, np.ndarray) else lpns
        out = np.empty(len(lpns), dtype=np.int64)
        for i, lpn in enumerate(lpns):
            entry = get(lpn)
            out[i] = -1 if entry is None else entry[0]
        return out

    def insert(self, lpn: int, ppn: int, *, dirty: bool = False) -> list[EvictedPage]:
        """Insert or update a mapping; returns dirty evictions needed to make room."""
        entries = self._entries
        entry = entries.get(lpn)
        if entry is not None:
            entry[0] = ppn
            if dirty and not entry[1]:
                entry[1] = True
                self._dirty_count += 1
            entries.move_to_end(lpn)
            return []
        evicted: list[EvictedPage] = []
        while len(entries) >= self.capacity_entries:
            victim_lpn, victim = entries.popitem(last=False)
            if victim[1]:
                self._dirty_count -= 1
                evicted.append(
                    EvictedPage(
                        tvpn=victim_lpn // self.mappings_per_page,
                        dirty_lpns=(victim_lpn,),
                    )
                )
        entries[lpn] = [ppn, dirty]
        if dirty:
            self._dirty_count += 1
        return evicted

    def flush_all(self) -> list[EvictedPage]:
        """Return (and clean) every dirty entry grouped by translation page."""
        grouped: dict[int, list[int]] = {}
        for lpn, entry in self._entries.items():
            if entry[1]:
                grouped.setdefault(lpn // self.mappings_per_page, []).append(lpn)
                entry[1] = False
        self._dirty_count = 0
        return [EvictedPage(tvpn=tvpn, dirty_lpns=tuple(lpns)) for tvpn, lpns in grouped.items()]

    def memory_entries(self) -> int:
        """Current occupancy in entry units."""
        return len(self._entries)

    def hit_capacity(self) -> int:
        """Configured capacity in entry units."""
        return self.capacity_entries

    # ------------------------------------------------------ snapshot support
    def state_dict(self) -> dict[str, Any]:
        """Capture the cached entries in LRU-to-MRU order."""
        lpns = np.fromiter(self._entries.keys(), dtype=np.int64, count=len(self._entries))
        ppns = np.fromiter(
            (entry[0] for entry in self._entries.values()),
            dtype=np.int64,
            count=len(self._entries),
        )
        dirty = np.fromiter(
            (entry[1] for entry in self._entries.values()),
            dtype=np.uint8,
            count=len(self._entries),
        )
        return {"lpns": lpns, "ppns": ppns, "dirty": dirty}

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore the cache **in place**, preserving exact recency order
        (hot paths hold direct references to the entry dict)."""
        self._entries.clear()
        for lpn, ppn, dirty in zip(
            state["lpns"].tolist(), state["ppns"].tolist(), state["dirty"].tolist()
        ):
            self._entries[lpn] = [ppn, bool(dirty)]
        self._dirty_count = int(np.count_nonzero(state["dirty"]))


class PageGroupedCMT:
    """TPFTL-style two-level (translation page -> entries) mapping cache."""

    def __init__(self, capacity_entries: int, mappings_per_page: int) -> None:
        if capacity_entries <= 0:
            raise ConfigurationError("CMT capacity must be at least one entry")
        self.capacity_entries = capacity_entries
        self.mappings_per_page = mappings_per_page
        # tvpn -> (lpn -> [ppn, dirty])
        self._pages: OrderedDict[int, OrderedDict[int, list]] = OrderedDict()
        self._size_entries = 0
        # Count of entries with the dirty bit set, maintained by every mutation
        # below (mirror of :attr:`EntryLevelCMT._dirty_count`).  The batched
        # read planners consult it: when zero, any eviction a fast-path insert
        # causes is silent (no translation-page flush).
        self._dirty_count = 0

    # ------------------------------------------------------------ accounting
    def __len__(self) -> int:
        return sum(len(node) for node in self._pages.values())

    def memory_entries(self) -> int:
        """Occupancy in entry units, including per-node overhead."""
        return self._size_entries

    def node_count(self) -> int:
        """Number of cached translation-page nodes."""
        return len(self._pages)

    def __contains__(self, lpn: int) -> bool:
        node = self._pages.get(lpn // self.mappings_per_page)
        return node is not None and lpn in node

    @property
    def dirty_entry_count(self) -> int:
        """Number of cached entries whose dirty bit is set."""
        return self._dirty_count

    # --------------------------------------------------------------- lookup
    def lookup(self, lpn: int) -> int | None:
        """Return the cached PPN of an LPN (refreshing recency) or ``None``."""
        tvpn = lpn // self.mappings_per_page
        node = self._pages.get(tvpn)
        if node is None:
            return None
        entry = node.get(lpn)
        if entry is None:
            return None
        node.move_to_end(lpn)
        self._pages.move_to_end(tvpn)
        return entry[0]

    def probe_many(self, lpns: "np.ndarray | list[int]") -> np.ndarray:
        """Batch-probe: cached PPN per LPN, ``-1`` on miss, **no recency update**.

        Mirrors :meth:`EntryLevelCMT.probe_many` for the two-level layout
        (one node probe plus one entry probe per element).
        """
        pages_get = self._pages.get
        mappings_per_page = self.mappings_per_page
        lpns = lpns.tolist() if isinstance(lpns, np.ndarray) else lpns
        out = np.empty(len(lpns), dtype=np.int64)
        for i, lpn in enumerate(lpns):
            node = pages_get(lpn // mappings_per_page)
            entry = None if node is None else node.get(lpn)
            out[i] = -1 if entry is None else entry[0]
        return out

    # -------------------------------------------------------------- updates
    def insert(self, lpn: int, ppn: int, *, dirty: bool = False) -> list[EvictedPage]:
        """Insert or update one mapping; returns dirty evictions made for room."""
        return self.insert_many([(lpn, ppn)], dirty=dirty)

    def insert_many(self, mappings: Iterable[tuple[int, int]], *, dirty: bool = False) -> list[EvictedPage]:
        """Insert a batch of mappings (a miss fetch plus its prefetched neighbours)."""
        evicted: list[EvictedPage] = []
        pages = self._pages
        mappings_per_page = self.mappings_per_page
        capacity = self.capacity_entries
        for lpn, ppn in mappings:
            tvpn = lpn // mappings_per_page
            node = pages.get(tvpn)
            if node is None:
                # Fresh node: creating it already puts it at the recency tail,
                # and the entry cannot pre-exist, so both the membership probe
                # and the move_to_end are skipped.
                node = OrderedDict()
                pages[tvpn] = node
                node[lpn] = [ppn, dirty]
                self._size_entries += PAGE_NODE_OVERHEAD_ENTRIES + 1
                if dirty:
                    self._dirty_count += 1
            else:
                existing = node.get(lpn)
                if existing is None:
                    node[lpn] = [ppn, dirty]
                    self._size_entries += 1
                    if dirty:
                        self._dirty_count += 1
                else:
                    existing[0] = ppn
                    if dirty and not existing[1]:
                        existing[1] = True
                        self._dirty_count += 1
                    node.move_to_end(lpn)
                pages.move_to_end(tvpn)
            if self._size_entries > capacity:
                evicted.extend(self._evict_until_fits(exclude_tvpn=tvpn, exclude_lpn=lpn))
        return evicted

    def _evict_until_fits(self, *, exclude_tvpn: int, exclude_lpn: int) -> list[EvictedPage]:
        evicted: list[EvictedPage] = []
        # First evict whole LRU translation-page nodes (TPFTL's normal policy).
        while self._size_entries > self.capacity_entries and len(self._pages) > 1:
            victim_tvpn = next(iter(self._pages))
            if victim_tvpn == exclude_tvpn:
                # Re-queue the protected node and try the next-oldest one.
                self._pages.move_to_end(victim_tvpn)
                victim_tvpn = next(iter(self._pages))
                if victim_tvpn == exclude_tvpn:
                    break
            node = self._pages.pop(victim_tvpn)
            self._size_entries -= len(node) + PAGE_NODE_OVERHEAD_ENTRIES
            dirty_lpns = tuple(lpn for lpn, entry in node.items() if entry[1])
            if dirty_lpns:
                self._dirty_count -= len(dirty_lpns)
                evicted.append(EvictedPage(tvpn=victim_tvpn, dirty_lpns=dirty_lpns))
        # If a single node alone exceeds the capacity, fall back to evicting its
        # least-recently-used entries (never the one just inserted).
        if self._size_entries > self.capacity_entries and len(self._pages) == 1:
            tvpn, node = next(iter(self._pages.items()))
            dirty_lpns: list[int] = []
            while self._size_entries > self.capacity_entries and len(node) > 1:
                victim_lpn = next(iter(node))
                if victim_lpn == exclude_lpn:
                    node.move_to_end(victim_lpn)
                    victim_lpn = next(iter(node))
                    if victim_lpn == exclude_lpn:
                        break
                entry = node.pop(victim_lpn)
                self._size_entries -= 1
                if entry[1]:
                    self._dirty_count -= 1
                    dirty_lpns.append(victim_lpn)
            if dirty_lpns:
                evicted.append(EvictedPage(tvpn=tvpn, dirty_lpns=tuple(dirty_lpns)))
        return evicted

    # ------------------------------------------------------ snapshot support
    def state_dict(self) -> dict[str, Any]:
        """Capture nodes (LRU-to-MRU) and their entries (LRU-to-MRU within a node)."""
        total = len(self)
        node_tvpns = np.fromiter(self._pages.keys(), dtype=np.int64, count=len(self._pages))
        node_sizes = np.fromiter(
            (len(node) for node in self._pages.values()), dtype=np.int64, count=len(self._pages)
        )
        lpns = np.empty(total, dtype=np.int64)
        ppns = np.empty(total, dtype=np.int64)
        dirty = np.empty(total, dtype=np.uint8)
        index = 0
        for node in self._pages.values():
            for lpn, entry in node.items():
                lpns[index] = lpn
                ppns[index] = entry[0]
                dirty[index] = entry[1]
                index += 1
        return {
            "node_tvpns": node_tvpns,
            "node_sizes": node_sizes,
            "lpns": lpns,
            "ppns": ppns,
            "dirty": dirty,
            "size_entries": self._size_entries,
        }

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore the two-level cache **in place** with exact recency orders."""
        self._pages.clear()
        lpns = state["lpns"].tolist()
        ppns = state["ppns"].tolist()
        dirty = state["dirty"].tolist()
        index = 0
        for tvpn, size in zip(state["node_tvpns"].tolist(), state["node_sizes"].tolist()):
            node: OrderedDict[int, list] = OrderedDict()
            for _ in range(size):
                node[lpns[index]] = [ppns[index], bool(dirty[index])]
                index += 1
            self._pages[tvpn] = node
        self._size_entries = int(state["size_entries"])
        self._dirty_count = int(np.count_nonzero(state["dirty"]))

    def flush_all(self) -> list[EvictedPage]:
        """Return (and clean) every dirty entry grouped by translation page."""
        flushed: list[EvictedPage] = []
        for tvpn, node in self._pages.items():
            dirty_lpns = tuple(lpn for lpn, entry in node.items() if entry[1])
            if dirty_lpns:
                flushed.append(EvictedPage(tvpn=tvpn, dirty_lpns=dirty_lpns))
                for lpn in dirty_lpns:
                    node[lpn][1] = False
        self._dirty_count = 0
        return flushed
