"""Figure 20: normalized Filebench throughput of every FTL design.

Expected shape (Section IV-D): LearnedFTL outperforms the other flash-resident-
mapping FTLs by 1.1-2.3x because the CMT still captures locality while the
learned models absorb the misses; LeaFTL trails TPFTL because its mispredictions
still cause double reads.
"""

from __future__ import annotations

from repro.analysis.latency import normalize
from repro.experiments.runner import ALL_FTLS, ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.filebench import FilebenchWorkload

__all__ = ["run"]

WORKLOADS = ("fileserver", "webserver", "varmail")


def run(
    scale: Scale | str = Scale.DEFAULT,
    *,
    ftls: tuple[str, ...] = ALL_FTLS,
    workloads: tuple[str, ...] = WORKLOADS,
) -> ExperimentResult:
    """Reproduce Figure 20 (normalized Filebench throughput, all FTLs)."""
    scale = Scale.parse(scale)
    spec = ScaleSpec.for_scale(scale)
    operations = max(1_000, spec.read_requests // 4)
    result = ExperimentResult(
        name="fig20",
        description="Filebench throughput of every FTL, normalized to DFTL",
    )
    for workload_name in workloads:
        throughput: dict[str, float] = {}
        for ftl_name in ftls:
            ssd = prepare_ssd(ftl_name, spec, warmup="fill")
            workload = FilebenchWorkload.preset(workload_name, spec.geometry)
            ssd.run(workload.preconditioning(), threads=8)
            ssd.reset_stats()
            threads = min(workload.threads, spec.threads)
            ssd.run(workload.requests(operations), threads=threads)
            throughput[ftl_name] = ssd.stats.throughput_mb_s()
        # On an FTL subset (orchestrator shards) the DFTL baseline may be
        # absent; the orchestrator then rebuilds the rows from the raw
        # throughputs at merge time.
        normalized = normalize(throughput, baseline="dftl") if "dftl" in throughput else {}
        row: dict[str, object] = {"workload": workload_name}
        for ftl_name in ftls:
            if normalized:
                row[f"{ftl_name}_normalized"] = round(normalized[ftl_name], 3)
            row[f"{ftl_name}_mb_s"] = round(throughput[ftl_name], 1)
        result.rows.append(row)
        result.raw.setdefault("throughput_mb_s", {})[workload_name] = throughput
    result.notes.append(
        "Expected shape: learnedftl_normalized >= tpftl_normalized >= leaftl_normalized on "
        "every personality, with ideal as the upper bound."
    )
    return result
