"""Figure 19: RocksDB (db_bench) performance on each FTL design.

The store is filled with ``fillseq`` + ``overwrite`` (to 80 % of the usable
capacity) and then ``readrandom`` and ``readseq`` measure read performance with
a single thread.  Expected shape: LearnedFTL outperforms DFTL/TPFTL/LeaFTL on
readrandom (the paper reports 1.3-1.4x) thanks to model hits replacing double
reads, and is at least as good on readseq.
"""

from __future__ import annotations

from repro.analysis.latency import normalize
from repro.experiments.runner import ALL_FTLS, ExperimentResult, Scale, ScaleSpec
from repro.ssd.device import SSD
from repro.workloads.rocksdb import DbBench, MiniLSM

__all__ = ["run"]


def run(
    scale: Scale | str = Scale.DEFAULT, *, ftls: tuple[str, ...] = ALL_FTLS
) -> ExperimentResult:
    """Reproduce Figure 19 (db_bench readrandom / readseq plus hit ratios)."""
    scale = Scale.parse(scale)
    spec = ScaleSpec.for_scale(scale)
    # Size the key space so the live store fills roughly a third of the device:
    # whole-level compactions briefly hold both the old and the new tables, so
    # the peak footprint is about twice the live size.
    entries_per_page = 16
    num_keys = int(spec.geometry.num_logical_pages * 0.35 * entries_per_page)
    read_ops = spec.read_requests // 4 if scale is not Scale.TINY else 2_000
    result = ExperimentResult(
        name="fig19",
        description="RocksDB db_bench readrandom/readseq on each FTL (single thread)",
    )
    hit_rows: list[dict[str, object]] = []
    random_tput: dict[str, float] = {}
    seq_tput: dict[str, float] = {}
    for ftl_name in ftls:
        ssd = SSD.create(ftl_name, spec.geometry)
        lsm = MiniLSM(
            ssd,
            memtable_entries=max(256, num_keys // 64),
            entries_per_page=entries_per_page,
        )
        bench = DbBench(lsm, num_keys=num_keys)
        bench.fillseq()
        bench.overwrite(num_keys // 2)
        lsm.flush_memtable()
        # Measure the read phases with clean statistics.
        ssd.reset_stats()
        rand_result = bench.readrandom(read_ops)
        rand_stats = ssd.reset_stats()
        seq_result = bench.readseq()
        seq_stats = ssd.stats
        random_tput[ftl_name] = rand_result.ops_per_second
        seq_tput[ftl_name] = seq_result.ops_per_second
        result.rows.append(
            {
                "ftl": ftl_name,
                "readrandom_ops_s": round(rand_result.ops_per_second, 0),
                "readseq_ops_s": round(seq_result.ops_per_second, 0),
            }
        )
        for phase, stats in (("readrandom", rand_stats), ("readseq", seq_stats)):
            hit_rows.append(
                {
                    "ftl": ftl_name,
                    "phase": phase,
                    "cmt_hit": round(stats.cmt_hit_ratio(), 3),
                    "model_hit": round(stats.model_hit_ratio(), 3),
                    "single_read_fraction": round(stats.single_read_fraction(), 3),
                }
            )
    # Normalized columns need the baseline run; when this harness is invoked
    # on an FTL subset (the orchestrator's per-FTL shards), the orchestrator
    # recomputes them at merge time from the raw throughputs below.
    if "dftl" in random_tput:
        for row in result.rows:
            row["readrandom_normalized"] = round(
                normalize(random_tput, baseline="dftl")[row["ftl"]], 3
            )
            row["readseq_normalized"] = round(normalize(seq_tput, baseline="dftl")[row["ftl"]], 3)
    result.raw["readrandom_ops_s"] = random_tput
    result.raw["readseq_ops_s"] = seq_tput
    result.extra_tables["fig19b: CMT and model hit ratios"] = hit_rows
    result.notes.append(
        "Expected shape: learnedftl's readrandom_normalized exceeds dftl/tpftl/leaftl and "
        "approaches ideal."
    )
    return result
