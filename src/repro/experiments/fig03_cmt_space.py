"""Figure 3: TPFTL's CMT hit ratio as the cache grows (random reads).

The paper shows that even a CMT holding 50 % of all page mappings only reaches
a ~26 % hit ratio under random reads: growing the cache cannot fix the
double-read problem, which motivates compressing the mapping table instead.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.base import FTLConfig
from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.fio import FioJob

__all__ = ["run"]

#: CMT capacities (fraction of the full mapping table) swept by the paper.
DEFAULT_RATIOS: Sequence[float] = (0.001, 0.03, 0.10, 0.30, 0.50)


def run(
    scale: Scale | str = Scale.DEFAULT,
    *,
    ratios: Sequence[float] = DEFAULT_RATIOS,
    ftl_name: str = "tpftl",
) -> ExperimentResult:
    """Reproduce Figure 3 (CMT hit ratio vs CMT space ratio)."""
    spec = ScaleSpec.for_scale(scale)
    result = ExperimentResult(
        name="fig03",
        description="TPFTL CMT hit ratio vs CMT space under random and sequential reads",
    )
    for ratio in ratios:
        config = FTLConfig(cmt_ratio=ratio)
        row: dict[str, object] = {"cmt_space_pct": round(ratio * 100, 2)}
        for pattern in ("randread", "seqread"):
            ssd = prepare_ssd(ftl_name, spec, config=config, warmup="steady")
            job = FioJob.from_name(pattern, spec.read_requests)
            ssd.run(job.requests(spec.geometry), threads=spec.threads)
            row[f"{pattern}_cmt_hit"] = round(ssd.stats.cmt_hit_ratio(), 4)
        result.rows.append(row)
    result.notes.append(
        "Expected shape: the random-read hit ratio grows sub-linearly with cache size "
        "and stays far below the sequential-read hit ratio until the CMT approaches the "
        "full mapping table."
    )
    return result
