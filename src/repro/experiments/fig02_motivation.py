"""Figure 2: sequential vs random read performance of a demand-based FTL.

The motivation experiment of Section II-B: TPFTL is driven with fio sequential
and random reads at increasing thread counts.  The paper observes (a) random
read throughput consistently falling well short of sequential reads and (b) a
CMT hit ratio near zero under random reads regardless of thread count.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.fio import FioJob

__all__ = ["run"]


def _thread_counts(scale: Scale) -> Sequence[int]:
    if scale is Scale.TINY:
        return (1, 4, 8)
    return (1, 16, 32, 64)


def run(scale: Scale | str = Scale.DEFAULT, *, ftl_name: str = "tpftl") -> ExperimentResult:
    """Reproduce Figure 2 (throughput and CMT hit ratio vs thread count)."""
    scale = Scale.parse(scale)
    spec = ScaleSpec.for_scale(scale)
    result = ExperimentResult(
        name="fig02",
        description="TPFTL sequential vs random read throughput and CMT hit ratio",
    )
    for threads in _thread_counts(scale):
        row: dict[str, object] = {"threads": threads}
        for pattern in ("seqread", "randread"):
            ssd = prepare_ssd(ftl_name, spec, warmup="steady")
            job = FioJob.from_name(pattern, spec.read_requests)
            ssd.run(job.requests(spec.geometry), threads=threads)
            stats = ssd.stats
            row[f"{pattern}_mb_s"] = round(stats.throughput_mb_s(), 1)
            row[f"{pattern}_cmt_hit"] = round(stats.cmt_hit_ratio(), 3)
        result.rows.append(row)
    result.notes.append(
        "Expected shape: random-read throughput stays well below sequential-read "
        "throughput at every thread count, and the random-read CMT hit ratio is near zero."
    )
    return result
