"""Figure 22: energy cost under the four real-world traces.

Energy is computed from the per-operation counts of each run (read / program /
erase plus controller computation) and normalized to TPFTL.  Expected shape:
LearnedFTL consumes ~10-20 % less energy than TPFTL/LeaFTL on the read-dominated
WebSearch traces (fewer flash reads) and is comparable on the write-heavier
Systor trace, where program/erase energy dominates.
"""

from __future__ import annotations

from repro.analysis.latency import normalize
from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.ssd.energy import EnergyModel
from repro.workloads.traces import TRACE_PRESETS, trace_to_requests

__all__ = ["run", "ENERGY_FTLS"]

ENERGY_FTLS: tuple[str, ...] = ("tpftl", "leaftl", "learnedftl", "ideal")


def run(
    scale: Scale | str = Scale.DEFAULT,
    *,
    ftls: tuple[str, ...] = ENERGY_FTLS,
    traces: tuple[str, ...] = ("websearch1", "websearch2", "websearch3", "systor17"),
) -> ExperimentResult:
    """Reproduce Figure 22 (normalized energy under four traces)."""
    scale = Scale.parse(scale)
    spec = ScaleSpec.for_scale(scale)
    num_ios = 3_000 if scale is Scale.TINY else 40_000
    model = EnergyModel()
    result = ExperimentResult(
        name="fig22",
        description="Energy cost under the four traces, normalized to TPFTL",
    )
    for trace_name in traces:
        records = TRACE_PRESETS[trace_name](num_ios)
        energy: dict[str, float] = {}
        breakdowns: dict[str, dict[str, float]] = {}
        for ftl_name in ftls:
            ssd = prepare_ssd(ftl_name, spec, warmup="steady")
            requests = trace_to_requests(records, spec.geometry, preserve_timing=False)
            ssd.run(requests, threads=spec.threads)
            breakdown = model.evaluate(ssd.stats)
            energy[ftl_name] = breakdown.total_uj
            breakdowns[ftl_name] = {
                "read_mj": round(breakdown.read_uj / 1000.0, 2),
                "program_mj": round(breakdown.program_uj / 1000.0, 2),
                "erase_mj": round(breakdown.erase_uj / 1000.0, 2),
            }
        # On an FTL subset (orchestrator shards) the TPFTL baseline may be
        # absent; the orchestrator recomputes normalized_energy at merge time
        # from the raw energies below.
        normalized = normalize(energy, baseline="tpftl") if "tpftl" in energy else {}
        for ftl_name in ftls:
            row: dict[str, object] = {
                "workload": trace_name,
                "ftl": ftl_name,
                "energy_mj": round(energy[ftl_name] / 1000.0, 2),
            }
            if normalized:
                row["normalized_energy"] = round(normalized[ftl_name], 3)
            row.update(breakdowns[ftl_name])
            result.rows.append(row)
        result.raw.setdefault("energy_uj", {})[trace_name] = energy
    result.notes.append(
        "Expected shape: learnedftl's normalized energy <= 1.0 on the read-dominated "
        "WebSearch traces and roughly 1.0 on Systor."
    )
    return result
