"""Experiment harnesses: one module per figure/table of the paper's evaluation.

Each module exposes ``run(scale=..., **kwargs) -> ExperimentResult``.  The
:data:`EXPERIMENTS` registry maps experiment names to those entry points and is
what the command-line interface (``python -m repro.experiments``) and the
pytest benchmarks use.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments import (
    fig02_motivation,
    fig03_cmt_space,
    fig06_leaftl_randread,
    fig07_locality,
    fig14_fio,
    fig15_compute,
    fig16_gc_frequency,
    fig17_gc_breakdown,
    fig18_overhead,
    fig19_rocksdb,
    fig20_filebench,
    fig21_tail_latency,
    fig22_energy,
    noop,
    table02_traces,
)
from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd

__all__ = [
    "EXPERIMENTS",
    "INTERNAL_EXPERIMENTS",
    "run_experiment",
    "ExperimentResult",
    "Scale",
    "ScaleSpec",
    "prepare_ssd",
]

#: name -> (run callable, one-line description)
EXPERIMENTS: dict[str, tuple[Callable[..., ExperimentResult], str]] = {
    "fig02": (fig02_motivation.run, "TPFTL seq vs rand read throughput and CMT hit ratio"),
    "fig03": (fig03_cmt_space.run, "TPFTL CMT hit ratio vs CMT space ratio"),
    "fig06": (fig06_leaftl_randread.run, "LeaFTL vs TPFTL random reads + read breakdown"),
    "fig07": (fig07_locality.run, "LeaFTL vs TPFTL under Filebench locality workloads"),
    "fig14": (fig14_fio.run, "FIO throughput / hit ratios / write amplification (all FTLs)"),
    "fig15": (fig15_compute.run, "Computing overhead of sorting, training and prediction"),
    "fig16": (fig16_gc_frequency.run, "GC frequency over time under FIO writes"),
    "fig17": (fig17_gc_breakdown.run, "Sorting/training share of GC time"),
    "fig18": (fig18_overhead.run, "LearnedFTL with vs without computation charges"),
    "fig19": (fig19_rocksdb.run, "RocksDB db_bench readrandom/readseq on each FTL"),
    "fig20": (fig20_filebench.run, "Filebench normalized throughput for every FTL"),
    "fig21": (fig21_tail_latency.run, "P99/P99.9 tail latency under four traces"),
    "fig22": (fig22_energy.run, "Energy cost under four traces"),
    "noop": (noop.run, "Trivial experiment used to measure orchestration overhead"),
    "table02": (table02_traces.run, "Workload characteristics of the four traces"),
}

#: Experiments that are execution units of another front end; ``all`` and the
#: pytest experiment sweeps skip them (``studycell`` needs generated kwargs,
#: ``noop`` exists only for the dispatch-overhead benchmark).
INTERNAL_EXPERIMENTS: frozenset[str] = frozenset({"studycell", "noop"})


def run_experiment(name: str, scale: Scale | str = Scale.DEFAULT, **kwargs) -> ExperimentResult:
    """Run one experiment by name.

    When process-wide observability is on (``set_metrics_window_us`` /
    ``set_trace_dir`` in :mod:`repro.experiments.runner`), the telemetry of
    every device the harness prepares is drained into the result's
    ``raw["telemetry"]`` block, which flows into the JSON artifacts.
    """
    try:
        runner, _ = EXPERIMENTS[name]
    except KeyError as exc:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}") from exc
    from repro.experiments.runner import (
        begin_telemetry_capture,
        collect_telemetry,
        observability_settings,
    )

    if observability_settings() == (None, None):
        return runner(scale=scale, **kwargs)
    begin_telemetry_capture()
    result = runner(scale=scale, **kwargs)
    telemetry = collect_telemetry(name)
    if telemetry is not None:
        result.raw["telemetry"] = telemetry
    return result


# The study-cell experiment lives in repro.studies (it is the execution unit
# of declarative scenario sweeps) but registers here so the orchestrator's
# task machinery — worker processes, result cache, dry-run — applies to study
# cells unchanged.  Imported last: the studies planner imports this package
# back for the registry and run_experiment defined above.
from repro.studies import cell as _study_cell  # noqa: E402

EXPERIMENTS["studycell"] = (
    _study_cell.run,
    "One cell of a declarative study (driven by the 'study' verb, not run directly)",
)
