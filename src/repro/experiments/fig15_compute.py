"""Figure 15: computing overhead of sorting, training and prediction.

The paper measures the three controller-side operations LearnedFTL adds, on an
x86 host and an ARM Cortex-A72, and finds them to be tens of microseconds per
GTD entry (sorting + training) and sub-microsecond per prediction.  The harness
measures the operations as implemented by this library and reports them next to
the calibrated constants the simulator charges on its timeline.
"""

from __future__ import annotations

from repro.analysis.compute import measure_compute_costs
from repro.experiments.runner import ExperimentResult, Scale

__all__ = ["run"]


def run(scale: Scale | str = Scale.DEFAULT, *, repeats: int | None = None) -> ExperimentResult:
    """Reproduce Figure 15 (per-operation computing overhead)."""
    scale = Scale.parse(scale)
    repeats = repeats if repeats is not None else (50 if scale is Scale.TINY else 300)
    costs = measure_compute_costs(repeats=repeats)
    result = ExperimentResult(
        name="fig15",
        description="Computing overhead of sorting / training / prediction",
        rows=costs.rows(),
    )
    result.notes.append(
        "Expected shape: sorting+training costs tens of microseconds per GTD entry and a "
        "prediction costs well under a microsecond - negligible next to a 40 us flash read."
    )
    return result
