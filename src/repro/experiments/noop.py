"""A deliberately trivial experiment for measuring execution overhead.

``noop`` builds no SSD and replays no workload: it returns a one-row result
immediately.  Running a batch of noop tasks through the orchestrator
therefore measures the *machinery* — task dispatch, pickling, result
collection — with essentially zero experiment compute, which is what the
``orchestrator_dispatch_overhead_us`` metric in ``benchmarks/perf_smoke.py``
gates.  Registered as an internal experiment: ``all`` and the CLI sweeps
skip it.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, Scale


def run(scale: Scale | str = Scale.TINY, *, index: int = 0, **_ignored) -> ExperimentResult:
    """Return a trivial single-row result (no simulation work at all)."""
    scale = Scale.parse(scale)
    return ExperimentResult(
        name="noop",
        description="Trivial experiment used to measure orchestration overhead",
        rows=[{"index": index, "scale": scale.value}],
    )
