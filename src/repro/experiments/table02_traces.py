"""Table II: workload characteristics of the four traces.

For the synthetic stand-ins this reports the same columns as the paper's
Table II (number of I/Os, average I/O size, read ratio) so the generators can
be checked against the targets they were built to match.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, Scale
from repro.workloads.traces import TRACE_PRESETS, characterize

__all__ = ["run", "PAPER_TABLE_II"]

#: The paper's Table II values, used by EXPERIMENTS.md and the tests.
PAPER_TABLE_II = {
    "websearch1": {"num_ios": 1_055_235, "avg_io_kb": 15.5, "read_ratio": 1.0},
    "websearch2": {"num_ios": 1_200_964, "avg_io_kb": 15.3, "read_ratio": 0.9998},
    "websearch3": {"num_ios": 793_073, "avg_io_kb": 15.7, "read_ratio": 0.9996},
    "systor17": {"num_ios": 1_253_423, "avg_io_kb": 10.25, "read_ratio": 0.616},
}


def run(scale: Scale | str = Scale.DEFAULT, *, num_ios: int | None = None) -> ExperimentResult:
    """Reproduce Table II for the synthetic trace stand-ins."""
    scale = Scale.parse(scale)
    if num_ios is None:
        num_ios = 5_000 if scale is Scale.TINY else 50_000
    result = ExperimentResult(
        name="table02",
        description="Workload characteristics of the four synthetic trace stand-ins",
    )
    for name, factory in TRACE_PRESETS.items():
        records = factory(num_ios)
        row = characterize(name, records).as_row()
        paper = PAPER_TABLE_II[name]
        row["paper_avg_io_kb"] = paper["avg_io_kb"]
        row["paper_read_ratio"] = paper["read_ratio"]
        result.rows.append(row)
    result.notes.append(
        "The synthetic generators match the paper's mean I/O size and read ratio; the I/O "
        "count is a free parameter (the paper replays only the busiest window of each trace)."
    )
    return result
