"""Shared machinery for the per-figure experiment harnesses.

Every experiment module exposes ``run(scale=..., **kwargs) -> ExperimentResult``
and is registered in :data:`repro.experiments.EXPERIMENTS`.  This module
provides the pieces they share:

* :class:`Scale` — the three experiment sizes.  ``tiny`` is what the pytest
  benchmarks use (seconds), ``default`` runs on a ~0.5 GB simulated device
  (tens of seconds per figure) and ``full`` uses the paper's 32 GB geometry
  (hours; provided for completeness).
* :func:`prepare_ssd` — create an SSD, warm it to steady state the way
  Section IV-B describes, and reset the statistics so measurements exclude the
  warm-up.
* :class:`ExperimentResult` — rows + rendered table + free-form notes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping, Sequence

from repro.analysis.report import format_table, rows_to_csv
from repro.core.base import FTLConfig
from repro.nand.errors import ConfigurationError
from repro.nand.geometry import SSDGeometry
from repro.nand.timing import TimingModel
from repro.obs.trace import TraceRecorder
from repro.snapshot.store import SnapshotStore
from repro.snapshot.warm import warm_device
from repro.ssd.device import SSD
from repro.workloads.fio import FioJob

__all__ = [
    "Scale",
    "ScaleSpec",
    "ExperimentResult",
    "prepare_ssd",
    "ALL_FTLS",
    "BASELINE_FTLS",
    "WARMUP_IO_PAGES",
    "WARMUP_SEED",
    "WARMUP_THREAD_CAP",
    "set_snapshot_dir",
    "active_snapshot_store",
    "set_metrics_window_us",
    "set_trace_dir",
    "observability_settings",
    "begin_telemetry_capture",
    "collect_telemetry",
]

#: The warm-up identity :func:`prepare_ssd` uses by default.  The dry-run
#: predictors (``orchestrator._snapshot_status`` and the study planner's
#: ``_cell_snapshot_status``) must build their snapshot keys from these same
#: constants — duplicating the literals there would let predictions silently
#: drift from what a run actually warms.
WARMUP_IO_PAGES = 128
WARMUP_SEED = 7
WARMUP_THREAD_CAP = 8

#: FTLs compared in the full figures (order matches the paper's legends).
ALL_FTLS: tuple[str, ...] = ("dftl", "tpftl", "leaftl", "learnedftl", "ideal")

#: FTLs used by the motivation experiments.
BASELINE_FTLS: tuple[str, ...] = ("tpftl", "leaftl")


class Scale(enum.Enum):
    """Experiment size."""

    TINY = "tiny"
    DEFAULT = "default"
    FULL = "full"

    @classmethod
    def parse(cls, value: "Scale | str") -> "Scale":
        """Accept either a :class:`Scale` or its string name."""
        if isinstance(value, Scale):
            return value
        return cls(value)


@dataclass(frozen=True)
class ScaleSpec:
    """Concrete sizing parameters of one scale."""

    geometry: SSDGeometry
    read_requests: int
    write_requests: int
    warmup_overwrite_factor: float
    threads: int

    @classmethod
    def for_scale(cls, scale: "Scale | str") -> "ScaleSpec":
        """Resolve a scale name into geometry and request budgets."""
        scale = Scale.parse(scale)
        if scale is Scale.TINY:
            return cls(
                geometry=SSDGeometry.small(),
                read_requests=2_000,
                write_requests=2_000,
                warmup_overwrite_factor=1.0,
                threads=8,
            )
        if scale is Scale.DEFAULT:
            return cls(
                geometry=SSDGeometry.medium(),
                read_requests=40_000,
                write_requests=40_000,
                warmup_overwrite_factor=2.0,
                threads=64,
            )
        return cls(
            geometry=SSDGeometry.paper(),
            read_requests=400_000,
            write_requests=400_000,
            warmup_overwrite_factor=6.0,
            threads=64,
        )

    def with_overrides(
        self,
        *,
        geometry: SSDGeometry | None = None,
        threads: int | None = None,
        read_requests: int | None = None,
        write_requests: int | None = None,
    ) -> "ScaleSpec":
        """Copy of this spec with selected sizing parameters replaced.

        This is the planner hook the study subsystem uses: a study cell keeps
        a scale's request budgets but may substitute its own geometry and host
        thread count.
        """
        changes: dict[str, Any] = {}
        if geometry is not None:
            changes["geometry"] = geometry
        if threads is not None:
            changes["threads"] = threads
        if read_requests is not None:
            changes["read_requests"] = read_requests
        if write_requests is not None:
            changes["write_requests"] = write_requests
        return replace(self, **changes) if changes else self


@dataclass
class ExperimentResult:
    """Output of one experiment harness.

    ``raw`` carries machine-readable side data that is never rendered: the
    unrounded metrics (throughput, energy, ...) that the orchestrator needs to
    recompute cross-FTL normalized columns when an experiment is split into
    per-(ftl, trace) shards.  It must stay JSON-serializable.
    """

    name: str
    description: str
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    extra_tables: dict[str, list[dict[str, Any]]] = field(default_factory=dict)
    raw: dict[str, Any] = field(default_factory=dict)

    def table(self) -> str:
        """Render the main rows as an ASCII table."""
        return format_table(self.rows, title=f"{self.name}: {self.description}")

    def csv(self) -> str:
        """Render the main rows as CSV."""
        return rows_to_csv(self.rows)

    def render(self) -> str:
        """Render everything (main table, extra tables, notes)."""
        parts = [self.table()]
        for title, rows in self.extra_tables.items():
            parts.append("")
            parts.append(format_table(rows, title=title))
        if self.notes:
            parts.append("")
            parts.extend(f"note: {note}" for note in self.notes)
        return "\n".join(parts)

    def column(self, key: str, *, index: str | None = None) -> dict[str, Any]:
        """Return {row-id: value} for one column, keyed by ``index`` (default: first column)."""
        if not self.rows:
            return {}
        index_key = index or next(iter(self.rows[0]))
        return {row[index_key]: row[key] for row in self.rows}

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable representation (used by the orchestrator and cache)."""
        return {
            "name": self.name,
            "description": self.description,
            "rows": self.rows,
            "notes": self.notes,
            "extra_tables": self.extra_tables,
            "raw": self.raw,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. a cache entry)."""
        return cls(
            name=payload["name"],
            description=payload["description"],
            rows=list(payload.get("rows", [])),
            notes=list(payload.get("notes", [])),
            extra_tables=dict(payload.get("extra_tables", {})),
            raw=dict(payload.get("raw", {})),
        )


#: Process-wide snapshot store the harnesses warm through (set by the CLI /
#: orchestrator via :func:`set_snapshot_dir`; ``None`` = warm from scratch).
_SNAPSHOT_STORE: SnapshotStore | None = None


def set_snapshot_dir(path: "str | Path | None") -> SnapshotStore | None:
    """Point every subsequent :func:`prepare_ssd` at a snapshot store.

    ``None`` disables snapshotting.  Re-pointing at the same directory keeps
    the existing store object (and its hit/miss counters); worker processes
    call this once per task, so the counters accumulate across one process's
    tasks.
    """
    global _SNAPSHOT_STORE
    if path is None:
        _SNAPSHOT_STORE = None
    elif _SNAPSHOT_STORE is None or _SNAPSHOT_STORE.root != Path(path):
        _SNAPSHOT_STORE = SnapshotStore(path)
    return _SNAPSHOT_STORE


def active_snapshot_store() -> SnapshotStore | None:
    """The store :func:`prepare_ssd` currently warms through (or ``None``)."""
    return _SNAPSHOT_STORE


# Process-wide observability settings, mirroring the snapshot store: the CLI /
# orchestrator set them once (per worker process), :func:`prepare_ssd` applies
# them to every device it builds, and :func:`collect_telemetry` drains what the
# devices recorded into the experiment result's ``raw`` block.
_METRICS_WINDOW_US: float | None = None
_TRACE_DIR: Path | None = None
#: Devices instrumented since the last :func:`begin_telemetry_capture`,
#: as ``(ftl_name, ssd)`` in preparation order.
_OBSERVED_DEVICES: list[tuple[str, SSD]] = []


def set_metrics_window_us(window_us: float | None) -> float | None:
    """Enable (or disable, with ``None``) windowed telemetry for subsequent devices."""
    global _METRICS_WINDOW_US
    if window_us is not None and window_us <= 0:
        raise ConfigurationError(f"metrics window must be positive, got {window_us!r}")
    _METRICS_WINDOW_US = None if window_us is None else float(window_us)
    return _METRICS_WINDOW_US


def set_trace_dir(path: "str | Path | None") -> Path | None:
    """Enable (or disable, with ``None``) event tracing; traces land under ``path``."""
    global _TRACE_DIR
    _TRACE_DIR = None if path is None else Path(path)
    return _TRACE_DIR


def observability_settings() -> tuple[float | None, str | None]:
    """The active ``(metrics_window_us, trace_dir)`` pair (both ``None`` = off)."""
    return _METRICS_WINDOW_US, None if _TRACE_DIR is None else str(_TRACE_DIR)


def begin_telemetry_capture() -> None:
    """Forget previously instrumented devices (called per experiment run)."""
    _OBSERVED_DEVICES.clear()


def collect_telemetry(experiment: str) -> "dict[str, Any] | None":
    """Drain the telemetry of every device prepared since the capture began.

    Returns a JSON-serializable block (or ``None`` when observability is off):
    one entry per instrumented device with its per-window series and, when
    tracing is on, the Chrome trace file written under the trace directory
    (``<experiment>-<index>-<ftl>.trace.json``).
    """
    if not _OBSERVED_DEVICES:
        return None
    devices: list[dict[str, Any]] = []
    for index, (ftl_name, ssd) in enumerate(_OBSERVED_DEVICES):
        entry: dict[str, Any] = {"ftl": ftl_name}
        if ssd.recorder is not None:
            entry["windows"] = ssd.recorder.series(ssd.stats)
        tracer = ssd.tracer
        if tracer.enabled:
            entry["trace_events"] = len(tracer)
            if _TRACE_DIR is not None:
                path = tracer.write(
                    _TRACE_DIR / f"{experiment}-{index:02d}-{ftl_name}.trace.json"
                )
                entry["trace_file"] = str(path)
        devices.append(entry)
    _OBSERVED_DEVICES.clear()
    return {
        "metrics_window_us": _METRICS_WINDOW_US,
        "trace": _TRACE_DIR is not None,
        "devices": devices,
    }


def prepare_ssd(
    ftl_name: str,
    spec: ScaleSpec,
    *,
    config: FTLConfig | None = None,
    timing: TimingModel | None = None,
    warmup: str = "steady",
    warmup_io_pages: int = WARMUP_IO_PAGES,
    seed: int = WARMUP_SEED,
    snapshot_store: SnapshotStore | None = None,
) -> SSD:
    """Create and precondition an SSD the way the paper's evaluation does.

    ``warmup`` selects the preconditioning style:

    * ``"none"`` — fresh device;
    * ``"fill"`` — one sequential fill of the logical space;
    * ``"steady"`` — sequential fill followed by mixed sequential/random
      overwrites of ``warmup_overwrite_factor`` x the logical space using
      128-page (512 KB at 4 KB pages) requests, matching Section IV-B's
      warm-up that lets LeaFTL build its learned index.

    The warm-up runs through :func:`repro.snapshot.warm.warm_device`: when a
    snapshot store is active (``snapshot_store`` argument, else the
    process-wide store installed by :func:`set_snapshot_dir`), the warm image
    is restored from disk when present and published after the first warm-up
    — bit-identical either way.  Statistics are reset afterwards so the
    measured phase starts clean.
    """
    store = snapshot_store if snapshot_store is not None else _SNAPSHOT_STORE
    ssd = warm_device(
        ftl_name,
        spec.geometry,
        warmup=warmup,
        io_pages=warmup_io_pages,
        overwrite_factor=spec.warmup_overwrite_factor,
        threads=min(WARMUP_THREAD_CAP, spec.threads),
        seed=seed,
        config=config,
        timing=timing,
        store=store,
    )
    ssd.reset_stats()
    if _METRICS_WINDOW_US is not None or _TRACE_DIR is not None:
        # Instrument *after* the reset so window 0 starts at the measured
        # phase; warm-up activity never reaches the series or the trace.
        tracer = TraceRecorder() if _TRACE_DIR is not None else None
        ssd.enable_observability(window_us=_METRICS_WINDOW_US, tracer=tracer)
        _OBSERVED_DEVICES.append((ftl_name, ssd))
    return ssd


def run_fio(ssd: SSD, job: FioJob, *, threads: int) -> None:
    """Run a fio job on a prepared SSD (statistics accumulate in ``ssd.stats``)."""
    ssd.run(job.requests(ssd.geometry), threads=threads)
