"""Figure 21: P99 / P99.9 tail latency under the four real-world traces.

The SSD is warmed to steady state, then each trace (WebSearch1-3 and Systor17
stand-ins) is replayed open-loop.  Expected shape: LearnedFTL's P99 and P99.9
read latencies are several times lower than TPFTL's and LeaFTL's because its
model hits remove the sporadic double/triple reads that dominate the tail, and
they approach the ideal FTL on the read-only WebSearch traces.
"""

from __future__ import annotations

from repro.analysis.latency import tail_latency_row
from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.traces import TRACE_PRESETS, trace_to_requests

__all__ = ["run", "TAIL_LATENCY_FTLS"]

TAIL_LATENCY_FTLS: tuple[str, ...] = ("tpftl", "leaftl", "learnedftl", "ideal")


def _trace_sizes(scale: Scale) -> int:
    if scale is Scale.TINY:
        return 3_000
    if scale is Scale.DEFAULT:
        return 40_000
    return 400_000


def run(
    scale: Scale | str = Scale.DEFAULT,
    *,
    ftls: tuple[str, ...] = TAIL_LATENCY_FTLS,
    traces: tuple[str, ...] = ("websearch1", "websearch2", "websearch3", "systor17"),
    time_scale: float = 0.05,
) -> ExperimentResult:
    """Reproduce Figure 21 (P99 and P99.9 tail latencies under four traces)."""
    scale = Scale.parse(scale)
    spec = ScaleSpec.for_scale(scale)
    num_ios = _trace_sizes(scale)
    result = ExperimentResult(
        name="fig21",
        description="P99 / P99.9 tail latency under WebSearch1-3 and Systor17 stand-ins",
    )
    for trace_name in traces:
        records = TRACE_PRESETS[trace_name](num_ios)
        for ftl_name in ftls:
            ssd = prepare_ssd(ftl_name, spec, warmup="steady")
            requests = trace_to_requests(records, spec.geometry, time_scale=time_scale)
            ssd.replay(requests, streams=spec.threads)
            row = tail_latency_row(ftl_name, trace_name, ssd.stats).as_dict()
            row["throughput_mb_s"] = round(ssd.stats.throughput_mb_s(), 1)
            result.rows.append(row)
    result.notes.append(
        "Expected shape: learnedftl's p99/p999 are lower than tpftl's and leaftl's on every "
        "trace and close to ideal on the read-only WebSearch traces."
    )
    return result
