"""Figure 6: LeaFTL vs TPFTL under fio random reads.

Section II-D's analysis: LeaFTL's approximate segments plus its model-cache
misses turn random reads into double and triple reads, so its random-read
throughput falls below TPFTL's.  The harness reports (a) normalized throughput
and (b) the single/double/triple read breakdown of LeaFTL.
"""

from __future__ import annotations

from repro.analysis.latency import normalize
from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.fio import FioJob

__all__ = ["run"]


def run(scale: Scale | str = Scale.DEFAULT) -> ExperimentResult:
    """Reproduce Figure 6 (random-read throughput and multi-read statistics)."""
    spec = ScaleSpec.for_scale(scale)
    result = ExperimentResult(
        name="fig06",
        description="LeaFTL vs TPFTL random reads: throughput and read-count breakdown",
    )
    throughput: dict[str, float] = {}
    for ftl_name in ("leaftl", "tpftl"):
        ssd = prepare_ssd(ftl_name, spec, warmup="steady")
        job = FioJob.randread(spec.read_requests)
        ssd.run(job.requests(spec.geometry), threads=spec.threads)
        stats = ssd.stats
        throughput[ftl_name] = stats.throughput_mb_s()
        result.rows.append(
            {
                "ftl": ftl_name,
                "throughput_mb_s": round(stats.throughput_mb_s(), 1),
                "single_fraction": round(stats.single_read_fraction(), 3),
                "double_fraction": round(stats.double_read_fraction(), 3),
                "triple_fraction": round(stats.triple_read_fraction(), 3),
            }
        )
    normalized = normalize(throughput, baseline="tpftl")
    for row in result.rows:
        row["normalized_throughput"] = round(normalized[row["ftl"]], 3)
    result.notes.append(
        "Expected shape: LeaFTL's normalized throughput < 1.0 (the paper reports 0.71) and a "
        "large fraction of its reads are double or triple reads."
    )
    return result
