"""Command-line interface for the experiment harness.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig14 --scale tiny
    python -m repro.experiments all --scale default --csv-dir results/
    python -m repro.experiments all --scale tiny --jobs 4 --cache-dir .cache/
    python -m repro.experiments all --scale tiny --snapshot-dir .snapshots/
    python -m repro.experiments all --scale tiny --cache-dir .cache/ --dry-run
    python -m repro.experiments fig21 fig22 --json-dir results/json/
    python -m repro.experiments fig06 --scale tiny --profile
    python -m repro.experiments fig14 --scale tiny --metrics-window-us 50000 --trace-out traces/
    python -m repro.experiments study my_sweep.yaml --scale tiny --jobs 4
    python -m repro.experiments study my_sweep.yaml --backend thread --workers 0
    python -m repro.experiments worker shared/queue &          # on any host
    python -m repro.experiments all --backend file-queue --queue-dir shared/queue
    python -m repro.experiments replay trace.csv.gz --run-dir runs/r1 \\
        --chunk-requests 10000 --checkpoint-every 100000
    python -m repro.experiments replay --resume --run-dir runs/r1

``all`` (or several experiment names) runs through the orchestrator: the
multi-FTL figures are split into per-(FTL, workload) tasks, ``--backend``
selects how tasks execute (``serial``, ``thread``, ``process``, or the
multi-host ``file-queue``; the default ``auto`` picks serial or process),
``--jobs N`` / ``--workers N`` sets the worker count (``0`` auto-detects the
CPU count), ``--cache-dir`` reuses any task whose (experiment, scale, kwargs,
package version) content key is unchanged, and per-experiment failures are
collected into a summary instead of aborting the batch.

``study <spec.yaml|spec.json>`` runs a declarative scenario sweep (see
``docs/studies.md``): the spec's axes are expanded into cells, executed
through the same orchestrator (``--jobs``/``--backend``/``--cache-dir``/
``--snapshot-dir`` apply unchanged) and merged into one comparison table per
study.

``worker <queue-dir>`` attaches this process to a file-queue directory and
executes tasks until the coordinating run writes its stop sentinel — start
any number of these, on any hosts sharing the directory, before or during a
``--backend file-queue`` run.

``replay <trace>`` streams a SPC/Systor trace file (optionally ``.gz``)
through one FTL with bounded memory, checkpointing periodically so a killed
replay resumes bit-identical via ``--resume`` (see ``docs/replay.md``).
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS, INTERNAL_EXPERIMENTS, run_experiment
from repro.experiments.orchestrator import describe_plan, run_orchestrated, write_json_artifact
from repro.experiments.runner import Scale, set_metrics_window_us, set_snapshot_dir, set_trace_dir
from repro.nand.errors import ConfigurationError


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures and tables of the LearnedFTL paper.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        default=[],
        metavar="experiment",
        help="experiment names (e.g. fig14 fig21), 'all' to run every experiment, "
        "or 'study <spec.yaml>...' to run declarative scenario sweeps",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in Scale],
        default=Scale.DEFAULT.value,
        help="experiment size: tiny (seconds), default (minutes) or full (paper geometry)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run up to N experiment tasks in parallel workers (default: 1; "
        "0 = auto-detect the CPU count)",
    )
    parser.add_argument(
        "--workers",
        dest="jobs",
        type=int,
        default=argparse.SUPPRESS,
        metavar="N",
        help="alias for --jobs",
    )
    parser.add_argument(
        "--backend",
        choices=["auto", "serial", "thread", "process", "file-queue"],
        default="auto",
        help="execution backend (default: auto = serial for one worker, process "
        "otherwise, file-queue when --queue-dir is given)",
    )
    parser.add_argument(
        "--queue-dir",
        type=Path,
        default=None,
        help="shared directory for the file-queue backend; point several hosts' "
        "'worker' processes at the same directory to cooperate on one run",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write each experiment's rows to <dir>/<name>.csv",
    )
    parser.add_argument(
        "--json-dir",
        type=Path,
        default=None,
        help="write each experiment's full result (rows, notes, timing, schema version) "
        "to <dir>/<name>.json",
    )
    parser.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="cache per-task results here, keyed on experiment+scale+kwargs+version; "
        "re-running recomputes only what changed",
    )
    parser.add_argument(
        "--snapshot-dir",
        type=Path,
        default=None,
        help="store/restore warmed-device snapshots here; warm-up (fill + overwrite) "
        "is paid once per (FTL, geometry, config, recipe) and restored afterwards",
    )
    parser.add_argument(
        "--metrics-window-us",
        type=float,
        default=None,
        metavar="US",
        help="record per-window telemetry (simulated-time buckets of this width in "
        "microseconds); the series lands in --json-dir artifacts and is "
        "summarized after each experiment",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="DIR",
        help="write Chrome trace-event JSON files (Perfetto-loadable) for every "
        "simulated device into this directory",
    )
    parser.add_argument(
        "--dry-run",
        action="store_true",
        help="print the planned shard tasks with their cache (and snapshot) hit/miss "
        "status without executing anything",
    )
    parser.add_argument(
        "--no-split",
        action="store_true",
        help="do not split multi-FTL experiments into per-(FTL, workload) tasks",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each experiment under cProfile and print the top-20 cumulative entries "
        "(serial, in-process, bypasses the cache)",
    )
    return parser


def _profile_experiments(names: list[str], scale: str, csv_dir: Path | None) -> int:
    """The pre-orchestrator serial path, kept for --profile runs."""
    for name in names:
        started = time.time()
        profiler = cProfile.Profile()
        profiler.enable()
        result = run_experiment(name, scale=scale)
        profiler.disable()
        stats = pstats.Stats(profiler, stream=sys.stdout)
        stats.sort_stats("cumulative").print_stats(20)
        elapsed = time.time() - started
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f} s at scale={scale}]")
        print()
        if csv_dir is not None:
            csv_dir.mkdir(parents=True, exist_ok=True)
            (csv_dir / f"{name}.csv").write_text(result.csv())
    return 0


def _report_outcomes(outcomes, args) -> list:
    """Render results, write artifacts and return the failed outcomes."""
    failed = []
    for outcome in outcomes:
        if not outcome.ok:
            failed.append(outcome)
            print(f"[{outcome.name} FAILED at scale={args.scale}]", file=sys.stderr)
            print(outcome.error, file=sys.stderr)
            continue
        print(outcome.result.render())
        # elapsed_s sums per-task compute; it equals wall-clock only for a
        # serial, cache-less run, so label it honestly otherwise.
        if outcome.cached_tasks == outcome.tasks:
            print(
                f"[{outcome.name} completed from cache at scale={args.scale} "
                f"({outcome.elapsed_s:.1f} s of compute saved)]"
            )
        elif args.jobs == 1 and outcome.cached_tasks == 0:
            print(f"[{outcome.name} completed in {outcome.elapsed_s:.1f} s at scale={args.scale}]")
        else:
            print(
                f"[{outcome.name} completed in {outcome.elapsed_s:.1f} s of task compute at "
                f"scale={args.scale}, {outcome.cached_tasks}/{outcome.tasks} tasks cached]"
            )
        telemetry = outcome.result.raw.get("telemetry") if outcome.result is not None else None
        if telemetry:
            from repro.analysis.windows import format_window_table

            for device in telemetry.get("devices", []):
                print(f"[windowed telemetry: {outcome.name} / {device['ftl']}]")
                print(format_window_table(device["windows"]))
                if device.get("trace_file"):
                    print(f"[trace written to {device['trace_file']}]")
            print()
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            (args.csv_dir / f"{outcome.name}.csv").write_text(outcome.result.csv())
        if args.json_dir is not None:
            write_json_artifact(args.json_dir, outcome, args.scale)
    return failed


def _run_studies(args) -> int:
    """The ``study`` verb: run (or dry-run) declarative scenario sweeps."""
    from repro.studies import describe_study_plan, run_study

    specs = args.experiments[1:]
    if not specs:
        print("study requires at least one spec file (YAML or JSON)", file=sys.stderr)
        return 2
    if args.profile:
        print("--profile is not supported for studies", file=sys.stderr)
        return 2

    if args.dry_run:
        try:
            for spec in specs:
                for line in describe_study_plan(
                    spec,
                    scale=args.scale,
                    cache_dir=args.cache_dir,
                    snapshot_dir=args.snapshot_dir,
                ):
                    print(line)
        except ConfigurationError as exc:
            print(f"invalid study spec: {exc}", file=sys.stderr)
            return 2
        return 0

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    # Validate every spec before running any: a typo in the last spec must
    # not surface only after the earlier studies' cells have been paid for.
    from repro.studies.planner import resolve_spec

    resolved = []
    for spec in specs:
        try:
            resolved.append(resolve_spec(spec))
        except ConfigurationError as exc:
            print(f"invalid study spec {spec}: {exc}", file=sys.stderr)
            return 2

    started = time.time()
    outcomes = [
        run_study(
            study,
            scale=args.scale,
            jobs=args.jobs,
            backend=args.backend,
            queue_dir=args.queue_dir,
            cache_dir=args.cache_dir,
            snapshot_dir=args.snapshot_dir,
            metrics_window_us=args.metrics_window_us,
            trace_dir=args.trace_out,
            progress=progress,
        )
        for study in resolved
    ]
    wall_s = time.time() - started

    failed = _report_outcomes(outcomes, args)
    if len(outcomes) > 1:
        status = "all ok" if not failed else f"{len(failed)} failed"
        print(
            f"[{len(outcomes) - len(failed)}/{len(outcomes)} studies succeeded in "
            f"{wall_s:.1f} s wall-clock with --jobs {args.jobs} ({status})]"
        )
    if failed:
        print(
            f"failed studies: {', '.join(outcome.name for outcome in failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


def _run_worker_verb(argv: list[str]) -> int:
    """The ``worker`` verb: attach to a file-queue directory and run tasks."""
    from repro.execution import run_worker

    parser = argparse.ArgumentParser(
        prog="repro-experiments worker",
        description="Execute tasks from a shared file-queue directory until the "
        "coordinating run signals stop.  Start any number of workers, on any "
        "hosts sharing the directory.",
    )
    parser.add_argument("queue_dir", type=Path, help="the run's shared queue directory")
    parser.add_argument(
        "--poll",
        type=float,
        default=0.5,
        metavar="SECONDS",
        help="how often to look for claimable tasks (default: 0.5)",
    )
    parser.add_argument(
        "--drain",
        action="store_true",
        help="exit as soon as no task is claimable instead of waiting for stop",
    )
    parser.add_argument(
        "--max-tasks",
        type=int,
        default=None,
        metavar="N",
        help="exit after executing N tasks",
    )
    parser.add_argument(
        "--id",
        default=None,
        metavar="WORKER_ID",
        help="worker identity recorded in results (default: <hostname>-<pid>)",
    )
    args = parser.parse_args(argv)
    executed = run_worker(
        args.queue_dir,
        poll_s=args.poll,
        drain=args.drain,
        max_tasks=args.max_tasks,
        worker_id=args.id,
        log=lambda line: print(line, file=sys.stderr, flush=True),
    )
    print(f"[worker exiting after {executed} tasks]", file=sys.stderr)
    return 0


def _run_replay_verb(argv: list[str]) -> int:
    """The ``replay`` verb: checkpointed streaming replay of a trace file."""
    import json

    from repro.experiments.runner import ScaleSpec
    from repro.execution.atomic import publish_json
    from repro.nand.errors import TraceFormatError
    from repro.replay import ReplayError, ReplayPlan, ReplaySession
    from repro.snapshot.store import SnapshotStore
    from repro.snapshot.warm import WARMUP_MODES
    from repro.workloads.traces import trace_format_for

    parser = argparse.ArgumentParser(
        prog="repro-experiments replay",
        description="Stream a SPC/Systor trace file (optionally .gz) through one "
        "FTL with bounded memory, writing periodic checkpoints so a killed "
        "replay resumes bit-identical from --run-dir (see docs/replay.md).",
    )
    parser.add_argument(
        "trace",
        nargs="?",
        type=Path,
        default=None,
        help="trace file to replay (.spc/.csv, optionally .gz); omitted with --resume",
    )
    parser.add_argument(
        "--run-dir",
        type=Path,
        required=True,
        help="run directory holding manifest.json and checkpoints/",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="continue the run pinned by --run-dir's manifest from its latest checkpoint",
    )
    parser.add_argument(
        "--format",
        choices=["spc", "systor"],
        default=None,
        help="trace format (default: inferred from the file suffix)",
    )
    parser.add_argument("--ftl", default="dftl", help="FTL design to replay onto (default: dftl)")
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in Scale],
        default=Scale.TINY.value,
        help="device geometry: tiny (small), default (medium) or full (paper)",
    )
    parser.add_argument(
        "--streams",
        type=int,
        default=1,
        metavar="N",
        help="independent open-loop submission streams (stream_id maps modulo N)",
    )
    parser.add_argument(
        "--chunk-requests",
        type=int,
        default=10_000,
        metavar="N",
        help="requests replayed per bounded chunk (memory stays O(chunk); default: 10000)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a checkpoint every N replayed requests",
    )
    parser.add_argument(
        "--checkpoint-every-sim-s",
        type=float,
        default=None,
        metavar="S",
        help="write a checkpoint every S simulated seconds",
    )
    parser.add_argument(
        "--keep-checkpoints",
        type=int,
        default=2,
        metavar="N",
        help="retain the newest N checkpoints (default: 2, so a corrupt newest "
        "checkpoint still leaves a fallback)",
    )
    parser.add_argument(
        "--limit", type=int, default=None, metavar="N", help="replay only the first N records"
    )
    parser.add_argument(
        "--max-errors",
        type=int,
        default=0,
        metavar="N",
        help="tolerate up to N malformed trace lines (counted and skipped; default: 0)",
    )
    parser.add_argument(
        "--time-scale",
        type=float,
        default=1.0,
        metavar="F",
        help="multiply trace inter-arrival times by F (default: 1.0)",
    )
    parser.add_argument(
        "--no-timing",
        action="store_true",
        help="ignore trace timestamps and replay closed-loop per stream",
    )
    parser.add_argument(
        "--warmup",
        choices=list(WARMUP_MODES),
        default="none",
        help="precondition the device before replaying (default: none)",
    )
    parser.add_argument(
        "--snapshot-dir",
        type=Path,
        default=None,
        help="warm-device snapshot store (warm-up restored instead of recomputed)",
    )
    parser.add_argument(
        "--metrics-window-us",
        type=float,
        default=None,
        metavar="US",
        help="record per-window telemetry in simulated-time buckets of this width",
    )
    parser.add_argument(
        "--trace-out",
        type=Path,
        default=None,
        metavar="DIR",
        help="write a Chrome trace-event JSON file for the replayed device here "
        "(best-effort: covers events since the last resume)",
    )
    parser.add_argument(
        "--stop-after-checkpoints",
        type=int,
        default=None,
        metavar="N",
        help="pause cleanly right after the Nth checkpoint written by this invocation",
    )
    parser.add_argument(
        "--stop-after-requests",
        type=int,
        default=None,
        metavar="N",
        help="abort (no checkpoint) once the total replayed request count reaches N — "
        "models a crash between checkpoints",
    )
    parser.add_argument(
        "--stats-out",
        type=Path,
        default=None,
        metavar="FILE",
        help="write the run result (summary, counters, state sha256, telemetry) as JSON",
    )
    args = parser.parse_args(argv)

    try:
        if args.resume:
            manifest_path = args.run_dir / "manifest.json"
            try:
                manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as exc:
                print(f"cannot read {manifest_path}: {exc}", file=sys.stderr)
                return 2
            plan = ReplayPlan.from_manifest(manifest)
        else:
            if args.trace is None:
                print("a trace file is required unless --resume is given", file=sys.stderr)
                return 2
            if not args.trace.is_file():
                print(f"trace file not found: {args.trace}", file=sys.stderr)
                return 2
            plan = ReplayPlan(
                trace_path=str(args.trace),
                trace_format=args.format or trace_format_for(args.trace),
                ftl_name=args.ftl,
                geometry=ScaleSpec.for_scale(args.scale).geometry,
                streams=args.streams,
                chunk_requests=args.chunk_requests,
                checkpoint_every_requests=args.checkpoint_every,
                checkpoint_every_sim_s=args.checkpoint_every_sim_s,
                preserve_timing=not args.no_timing,
                time_scale=args.time_scale,
                limit=args.limit,
                max_errors=args.max_errors,
                warmup=args.warmup,
                metrics_window_us=args.metrics_window_us,
                keep_checkpoints=args.keep_checkpoints,
            )
        tracer = None
        if args.trace_out is not None:
            from repro.obs.trace import TraceRecorder

            tracer = TraceRecorder()
        store = SnapshotStore(args.snapshot_dir) if args.snapshot_dir is not None else None
        session = ReplaySession(
            plan,
            args.run_dir,
            snapshot_store=store,
            log=lambda line: print(line, file=sys.stderr, flush=True),
            tracer=tracer,
        )
        result = session.run(
            resume=args.resume,
            stop_after_checkpoints=args.stop_after_checkpoints,
            stop_after_requests=args.stop_after_requests,
        )
    except (ReplayError, TraceFormatError, ConfigurationError) as exc:
        print(f"replay failed: {exc}", file=sys.stderr)
        return 2

    status = "finished" if result.finished else "paused"
    print(
        f"[replay {status}: {result.requests} requests from {result.records} records "
        f"on {plan.ftl_name}, sim time {result.sim_time_us / 1e6:.3f}s, "
        f"{result.checkpoints_written} checkpoint(s) written"
        + (f", resumed from checkpoint {result.resumed_from}" if result.resumed_from else "")
        + "]"
    )
    for key in ("throughput_mb_s", "read_p99_us", "write_p99_us", "write_amplification"):
        if key in result.summary:
            print(f"  {key} = {result.summary[key]:.4g}")
    if result.telemetry:
        from repro.analysis.windows import format_window_table

        print(f"[windowed telemetry: replay / {plan.ftl_name}]")
        print(format_window_table(result.telemetry))
    if tracer is not None:
        args.trace_out.mkdir(parents=True, exist_ok=True)
        trace_file = args.trace_out / f"replay-{plan.ftl_name}.trace.json"
        tracer.write(trace_file)
        print(f"[trace written to {trace_file}]")
    if args.stats_out is not None:
        args.stats_out.parent.mkdir(parents=True, exist_ok=True)
        publish_json(args.stats_out, result.as_dict(), indent=2)
        print(f"[stats written to {args.stats_out}]")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also exposed as the ``repro-experiments`` console script)."""
    if argv is None:
        argv = sys.argv[1:]
    # The worker and replay verbs have their own option sets; dispatch before
    # the main parser can trip over them.
    if argv and argv[0] == "worker":
        return _run_worker_verb(list(argv[1:]))
    if argv and argv[0] == "replay":
        return _run_replay_verb(list(argv[1:]))
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or not args.experiments:
        study_verb = "study <spec>..."
        worker_verb = "worker <queue-dir>"
        replay_verb = "replay <trace>"
        width = max(
            max(len(name) for name in EXPERIMENTS),
            len(study_verb),
            len(worker_verb),
            len(replay_verb),
        )
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        print(
            f"{study_verb.ljust(width)}  Declarative scenario sweep from YAML/JSON specs "
            "(see docs/studies.md)"
        )
        print(
            f"{worker_verb.ljust(width)}  Attach to a file-queue directory and execute "
            "tasks (multi-host runs)"
        )
        print(
            f"{replay_verb.ljust(width)}  Checkpointed streaming replay of a SPC/Systor "
            "trace file (see docs/replay.md)"
        )
        return 0
    if args.jobs < 0:
        print("--jobs must be >= 0 (0 = auto-detect the CPU count)", file=sys.stderr)
        return 2
    if args.backend == "file-queue" and args.queue_dir is None:
        print("--backend file-queue requires --queue-dir", file=sys.stderr)
        return 2
    if args.experiments[0] == "study":
        return _run_studies(args)
    names: list[str] = []
    for name in args.experiments:
        resolved_names = (
            [key for key in EXPERIMENTS if key not in INTERNAL_EXPERIMENTS]
            if name == "all"
            else [name]
        )
        for resolved in resolved_names:
            if resolved not in names:
                names.append(resolved)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2

    if args.dry_run:
        for line in describe_plan(
            names,
            scale=args.scale,
            split=not args.no_split,
            cache_dir=args.cache_dir,
            snapshot_dir=args.snapshot_dir,
        ):
            print(line)
        return 0

    if args.profile:
        set_snapshot_dir(args.snapshot_dir)
        set_metrics_window_us(args.metrics_window_us)
        set_trace_dir(args.trace_out)
        return _profile_experiments(names, args.scale, args.csv_dir)

    def progress(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    started = time.time()
    outcomes = run_orchestrated(
        names,
        scale=args.scale,
        jobs=args.jobs,
        backend=args.backend,
        queue_dir=args.queue_dir,
        split=not args.no_split,
        cache_dir=args.cache_dir,
        snapshot_dir=args.snapshot_dir,
        metrics_window_us=args.metrics_window_us,
        trace_dir=args.trace_out,
        progress=progress,
    )
    wall_s = time.time() - started

    failed = _report_outcomes(outcomes, args)
    if len(names) > 1:
        status = "all ok" if not failed else f"{len(failed)} failed"
        print(
            f"[{len(names) - len(failed)}/{len(names)} experiments succeeded in "
            f"{wall_s:.1f} s wall-clock with --jobs {args.jobs} ({status})]"
        )
    if failed:
        print(
            f"failed experiments: {', '.join(outcome.name for outcome in failed)}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
