"""Command-line interface for the experiment harness.

Examples::

    python -m repro.experiments --list
    python -m repro.experiments fig14 --scale tiny
    python -m repro.experiments all --scale default --csv-dir results/
    python -m repro.experiments fig06 --scale tiny --profile
"""

from __future__ import annotations

import argparse
import cProfile
import pstats
import sys
import time
from pathlib import Path

from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.runner import Scale


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the figures and tables of the LearnedFTL paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment name (e.g. fig14), or 'all' to run every experiment",
    )
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in Scale],
        default=Scale.DEFAULT.value,
        help="experiment size: tiny (seconds), default (minutes) or full (paper geometry)",
    )
    parser.add_argument("--list", action="store_true", help="list available experiments and exit")
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=None,
        help="also write each experiment's rows to <dir>/<name>.csv",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run each experiment under cProfile and print the top-20 cumulative entries",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point (also exposed as the ``repro-experiments`` console script)."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list or args.experiment is None:
        width = max(len(name) for name in EXPERIMENTS)
        for name, (_, description) in EXPERIMENTS.items():
            print(f"{name.ljust(width)}  {description}")
        return 0
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    for name in names:
        started = time.time()
        if args.profile:
            profiler = cProfile.Profile()
            profiler.enable()
            result = run_experiment(name, scale=args.scale)
            profiler.disable()
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats("cumulative").print_stats(20)
        else:
            result = run_experiment(name, scale=args.scale)
        elapsed = time.time() - started
        print(result.render())
        print(f"[{name} completed in {elapsed:.1f} s at scale={args.scale}]")
        print()
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            (args.csv_dir / f"{name}.csv").write_text(result.csv())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
