"""Figure 17: share of GC time spent in sorting and model training.

The paper runs FIO random writes for increasing durations and reports, for
LearnedFTL, how much of the total GC execution time is attributable to the
added sorting and training work — at most a few percent even when nearly all
pages are valid during GC.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.fio import FioJob

__all__ = ["run"]


def run(scale: Scale | str = Scale.DEFAULT, *, steps: int = 4) -> ExperimentResult:
    """Reproduce Figure 17 (sorting/training share of GC time vs run length)."""
    scale = Scale.parse(scale)
    spec = ScaleSpec.for_scale(scale)
    result = ExperimentResult(
        name="fig17",
        description="LearnedFTL: sorting+training time as a share of GC execution time",
    )
    for step in range(1, steps + 1):
        requests = max(200, spec.write_requests * step // steps)
        ssd = prepare_ssd("learnedftl", spec, warmup="steady")
        job = FioJob.randwrite(requests)
        ssd.run(job.requests(spec.geometry), threads=spec.threads)
        events = ssd.stats.gc_events
        gc_flash_us = sum(e.flash_time_us for e in events)
        gc_compute_us = sum(e.compute_time_us for e in events)
        total = gc_flash_us + gc_compute_us
        result.rows.append(
            {
                "write_requests": requests,
                "gc_events": len(events),
                "gc_flash_ms": round(gc_flash_us / 1000.0, 2),
                "sort_train_ms": round(gc_compute_us / 1000.0, 2),
                "sort_train_pct_of_gc": round(100.0 * gc_compute_us / total, 3) if total else 0.0,
            }
        )
    result.notes.append(
        "Expected shape: the sorting+training share of GC time stays in the low single-digit "
        "percent range (the paper reports up to 3.2%)."
    )
    return result
