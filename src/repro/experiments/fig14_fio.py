"""Figure 14: FIO performance of all five FTL designs (the headline figure).

Three panels:

* (a) throughput under random/sequential reads and writes;
* (b) CMT and model hit ratios under the read patterns;
* (c) write amplification under the write patterns.

Expected shape (paper, Section IV-B): LearnedFTL beats DFTL/TPFTL/LeaFTL on
random reads (1.4-1.6x) and approaches the ideal FTL; on sequential reads all
demand-based designs are close with LearnedFTL/ideal slightly ahead; on random
writes LearnedFTL's group-based allocation gives it the lowest write
amplification among the flash-resident-mapping designs.
"""

from __future__ import annotations

from repro.experiments.runner import ALL_FTLS, ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.fio import FioJob

__all__ = ["run"]

PATTERNS = ("randread", "seqread", "randwrite", "seqwrite")


def run(
    scale: Scale | str = Scale.DEFAULT,
    *,
    ftls: tuple[str, ...] = ALL_FTLS,
    patterns: tuple[str, ...] = PATTERNS,
) -> ExperimentResult:
    """Reproduce Figure 14 (throughput, hit ratios and write amplification)."""
    spec = ScaleSpec.for_scale(scale)
    result = ExperimentResult(
        name="fig14",
        description="FIO throughput / hit ratio / write amplification for all FTLs",
    )
    hit_rows: list[dict[str, object]] = []
    wa_rows: list[dict[str, object]] = []
    device_stats: dict[str, dict[str, dict[str, float]]] = {}
    for ftl_name in ftls:
        row: dict[str, object] = {"ftl": ftl_name}
        for pattern in patterns:
            ssd = prepare_ssd(ftl_name, spec, warmup="steady")
            is_read = pattern.endswith("read")
            requests = spec.read_requests if is_read else spec.write_requests
            job = FioJob.from_name(pattern, requests)
            ssd.run(job.requests(spec.geometry), threads=spec.threads)
            stats = ssd.stats
            row[f"{pattern}_mb_s"] = round(stats.throughput_mb_s(), 1)
            device_stats.setdefault(ftl_name, {})[pattern] = {
                "iops": stats.iops(),
                "read_p999_us": stats.read_latency_digest().p999_us,
                "utilization": stats.utilization(),
            }
            if is_read:
                hit_rows.append(
                    {
                        "ftl": ftl_name,
                        "pattern": pattern,
                        "cmt_hit": round(stats.cmt_hit_ratio(), 3),
                        "model_hit": round(stats.model_hit_ratio(), 3),
                        "single_read_fraction": round(stats.single_read_fraction(), 3),
                        "double_read_fraction": round(stats.double_read_fraction(), 3),
                        "triple_read_fraction": round(stats.triple_read_fraction(), 3),
                    }
                )
            else:
                wa_rows.append(
                    {
                        "ftl": ftl_name,
                        "pattern": pattern,
                        "write_amplification": round(stats.write_amplification(), 3),
                        "gc_count": stats.gc_count,
                    }
                )
        result.rows.append(row)
    result.extra_tables["fig14b: CMT and model hit ratios"] = hit_rows
    result.extra_tables["fig14c: write amplification"] = wa_rows
    # Machine-readable per-(ftl, pattern) device metrics for the JSON artifact
    # (schema v2); per-FTL shards deep-merge back into one mapping.
    result.raw["device_stats"] = device_stats
    result.notes.append(
        "Expected shape: learnedftl > dftl/tpftl/leaftl on randread and close to ideal; "
        "learnedftl's randwrite write amplification is the lowest of the flash-resident-"
        "mapping designs."
    )
    return result
