"""Figure 16: GC frequency over time under FIO writes.

The paper plots how often each FTL triggers garbage collection while random and
sequential writes run, showing that LearnedFTL's group-based allocation does not
increase the total number of GC invocations.  The harness buckets GC events
into time windows and also reports the totals.
"""

from __future__ import annotations

import numpy as np

from repro.experiments.runner import ALL_FTLS, ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.fio import FioJob

__all__ = ["run"]


def run(
    scale: Scale | str = Scale.DEFAULT,
    *,
    ftls: tuple[str, ...] = ALL_FTLS,
    buckets: int = 8,
) -> ExperimentResult:
    """Reproduce Figure 16 (GC frequency over time, random then sequential writes)."""
    spec = ScaleSpec.for_scale(scale)
    result = ExperimentResult(
        name="fig16",
        description="GC invocations over time under FIO random and sequential writes",
    )
    series_rows: list[dict[str, object]] = []
    for ftl_name in ftls:
        row: dict[str, object] = {"ftl": ftl_name}
        for pattern in ("randwrite", "seqwrite"):
            ssd = prepare_ssd(ftl_name, spec, warmup="steady")
            job = FioJob.from_name(pattern, spec.write_requests)
            ssd.run(job.requests(spec.geometry), threads=spec.threads)
            events = ssd.stats.gc_events
            row[f"{pattern}_gc_total"] = len(events)
            row[f"{pattern}_blocks_erased"] = sum(e.blocks_erased for e in events)
            if events and ssd.stats.finish_time_us > 0:
                times = np.asarray([e.time_us for e in events])
                histogram, edges = np.histogram(
                    times, bins=buckets, range=(0.0, ssd.stats.finish_time_us)
                )
                for bucket_index, count in enumerate(histogram):
                    series_rows.append(
                        {
                            "ftl": ftl_name,
                            "pattern": pattern,
                            "bucket_start_ms": round(edges[bucket_index] / 1000.0, 1),
                            "gc_events": int(count),
                        }
                    )
        result.rows.append(row)
    result.extra_tables["fig16 time series (bucketed GC events)"] = series_rows
    result.notes.append(
        "Expected shape: LearnedFTL's total erased blocks under both write patterns is "
        "comparable to (not larger than) the other FTLs'."
    )
    return result
