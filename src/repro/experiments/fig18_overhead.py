"""Figure 18: LearnedFTL with and without its additional computation.

Two panels:

* (a) FIO random-write throughput with the sorting/training charges enabled vs
  disabled — the difference should be well under 1 %;
* (b) FIO read throughput of LearnedFTL vs an "ideal LearnedFTL" whose bitmap
  hits resolve through an in-memory table instead of a model prediction — the
  gap quantifies the prediction cost and should also be ~1 %.
"""

from __future__ import annotations

from repro.core.base import FTLConfig
from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.fio import FioJob

__all__ = ["run"]


def run(scale: Scale | str = Scale.DEFAULT) -> ExperimentResult:
    """Reproduce Figure 18 (write-path and read-path computation overhead)."""
    spec = ScaleSpec.for_scale(scale)
    result = ExperimentResult(
        name="fig18",
        description="LearnedFTL with vs without controller computation charges",
    )
    # Panel (a): random writes with and without sorting/training cost.
    write_rows: dict[str, float] = {}
    for label, charge in (("with_train_sort", True), ("without_train_sort", False)):
        config = FTLConfig(charge_compute=charge)
        ssd = prepare_ssd("learnedftl", spec, config=config, warmup="steady")
        job = FioJob.randwrite(spec.write_requests)
        ssd.run(job.requests(spec.geometry), threads=spec.threads)
        write_rows[label] = ssd.stats.throughput_mb_s()
    slowdown = (
        (write_rows["without_train_sort"] - write_rows["with_train_sort"])
        / write_rows["without_train_sort"]
        if write_rows["without_train_sort"]
        else 0.0
    )
    result.rows.append(
        {
            "panel": "a: randwrite",
            "with_compute_mb_s": round(write_rows["with_train_sort"], 1),
            "without_compute_mb_s": round(write_rows["without_train_sort"], 1),
            "overhead_pct": round(100.0 * slowdown, 3),
        }
    )
    # Panel (b): reads with and without the per-prediction charge.
    for pattern in ("randread", "seqread"):
        read_rows: dict[str, float] = {}
        for label, charge in (("learnedftl", True), ("ideal_learnedftl", False)):
            config = FTLConfig(charge_compute=charge)
            ssd = prepare_ssd("learnedftl", spec, config=config, warmup="steady")
            job = FioJob.from_name(pattern, spec.read_requests)
            ssd.run(job.requests(spec.geometry), threads=spec.threads)
            read_rows[label] = ssd.stats.throughput_mb_s()
        gap = (
            (read_rows["ideal_learnedftl"] - read_rows["learnedftl"])
            / read_rows["ideal_learnedftl"]
            if read_rows["ideal_learnedftl"]
            else 0.0
        )
        result.rows.append(
            {
                "panel": f"b: {pattern}",
                "with_compute_mb_s": round(read_rows["learnedftl"], 1),
                "without_compute_mb_s": round(read_rows["ideal_learnedftl"], 1),
                "overhead_pct": round(100.0 * gap, 3),
            }
        )
    result.notes.append(
        "Expected shape: every overhead_pct value is close to zero (the paper reports <0.7% "
        "for writes and <1% for reads)."
    )
    return result
