"""Figure 7: TPFTL vs LeaFTL under Filebench workloads with high locality.

Even with locality, LeaFTL's mispredictions force double reads, so its
throughput is at best equal to TPFTL's (Figure 7a); the webserver breakdown
(Figure 7b) shows a high model-cache hit ratio but a much lower fraction of
reads actually resolved with a single flash read.
"""

from __future__ import annotations

from repro.analysis.latency import normalize
from repro.experiments.runner import ExperimentResult, Scale, ScaleSpec, prepare_ssd
from repro.workloads.filebench import FilebenchWorkload

__all__ = ["run"]

WORKLOADS = ("fileserver", "webserver", "varmail")


def run(scale: Scale | str = Scale.DEFAULT) -> ExperimentResult:
    """Reproduce Figure 7 (Filebench throughput and webserver hit ratios)."""
    scale = Scale.parse(scale)
    spec = ScaleSpec.for_scale(scale)
    operations = max(1_000, spec.read_requests // 4)
    result = ExperimentResult(
        name="fig07",
        description="TPFTL vs LeaFTL under Filebench (normalized throughput; webserver hit ratios)",
    )
    hit_rows: list[dict[str, object]] = []
    for workload_name in WORKLOADS:
        throughput: dict[str, float] = {}
        per_ftl: dict[str, dict[str, float]] = {}
        for ftl_name in ("leaftl", "tpftl"):
            ssd = prepare_ssd(ftl_name, spec, warmup="fill")
            workload = FilebenchWorkload.preset(workload_name, spec.geometry)
            ssd.run(workload.preconditioning(), threads=8)
            ssd.reset_stats()
            threads = min(workload.threads, spec.threads)
            ssd.run(workload.requests(operations), threads=threads)
            stats = ssd.stats
            throughput[ftl_name] = stats.throughput_mb_s()
            per_ftl[ftl_name] = {
                "cache_hit": stats.cmt_hit_ratio(),
                "single_read": stats.single_read_fraction(),
            }
        normalized = normalize(throughput, baseline="tpftl")
        result.rows.append(
            {
                "workload": workload_name,
                "leaftl_mb_s": round(throughput["leaftl"], 1),
                "tpftl_mb_s": round(throughput["tpftl"], 1),
                "leaftl_normalized": round(normalized["leaftl"], 3),
            }
        )
        if workload_name == "webserver":
            for ftl_name, values in per_ftl.items():
                hit_rows.append(
                    {
                        "ftl": ftl_name,
                        "cache_or_model_hit": round(values["cache_hit"], 3),
                        "single_read_fraction": round(values["single_read"], 3),
                    }
                )
    result.extra_tables["fig07b: webserver hit ratios"] = hit_rows
    result.notes.append(
        "Expected shape: LeaFTL's normalized throughput <= 1.0 on every personality; its "
        "cache hit ratio can be high while its single-read fraction stays lower than TPFTL's."
    )
    return result
