"""Parallel experiment orchestration with result caching.

The evaluation of the paper is 14 independent figure/table experiments, and
the heavyweight ones (fig14, fig19-fig22) are themselves products of
independent (FTL, workload) cells.  This module turns that structure into a
task graph executed through a pluggable backend (:mod:`repro.execution`):

* :func:`plan_tasks` splits an experiment into shard tasks (one per FTL or per
  (FTL, trace)/(workload, FTL) cell for the multi-FTL experiments, a single
  task otherwise);
* :func:`run_orchestrated` executes tasks through the selected execution
  backend — inline (``serial``), local pools (``thread``/``process``) or a
  shared queue directory spanning hosts (``file-queue``) — streaming per-task
  progress, caching each task's result on disk keyed by its content
  (experiment, scale, kwargs, package version), retrying a task that dies in
  a worker once on a fresh worker, and tolerating per-experiment failures;
* :func:`merge_results` reassembles shard results into exactly the rows the
  unsplit harness produces, recomputing cross-FTL normalized columns from the
  unrounded metrics the harnesses expose via ``ExperimentResult.raw``.

Because every task is deterministic given (experiment, scale, kwargs), the
merged output is identical for any backend and any ``--jobs`` value, and a
warm cache makes re-running ``all`` nearly free.
"""

from __future__ import annotations

import hashlib
import json
import math
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro import __version__
from repro.analysis.latency import normalize
from repro.execution import TaskPayload, create_backend, resolve_workers
from repro.execution.atomic import publish_json, publish_text
from repro.experiments import EXPERIMENTS
from repro.experiments.fig20_filebench import WORKLOADS as _FILEBENCH
from repro.experiments.fig21_tail_latency import TAIL_LATENCY_FTLS
from repro.experiments.fig22_energy import ENERGY_FTLS
from repro.experiments.runner import (
    ALL_FTLS,
    BASELINE_FTLS,
    WARMUP_IO_PAGES,
    WARMUP_SEED,
    WARMUP_THREAD_CAP,
    ExperimentResult,
    Scale,
    ScaleSpec,
)
from repro.snapshot.fingerprint import source_fingerprint
from repro.snapshot.store import SnapshotStore
from repro.snapshot.warm import warmup_recipe
from repro.workloads.traces import TRACE_PRESETS

__all__ = [
    "SCHEMA_VERSION",
    "ExperimentTask",
    "ExperimentOutcome",
    "TaskExecution",
    "ResultCache",
    "plan_tasks",
    "describe_plan",
    "merge_results",
    "execute_tasks",
    "run_orchestrated",
]

#: Version of the on-disk JSON artifact / cache entry layout.
#: v2: artifacts carry the harness's machine-readable ``raw`` section (which
#: now includes per-device ``iops`` / ``read_p999_us`` / ``utilization`` for
#: the performance experiments).
#: v3: ``summary()`` gained ``gc_pages_moved`` / ``write_p99_us`` /
#: ``write_p999_us``, and runs with observability enabled carry a
#: ``raw.telemetry`` block (per-window time series + trace file pointers).
SCHEMA_VERSION = 3

_SOURCE_FINGERPRINT: str | None = None


def _source_fingerprint() -> str:
    """Digest of every ``repro`` source file (computed once per process).

    Folding this into the cache key means cached experiment results go stale
    the moment any simulator or harness code changes — not only on version
    bumps.  The digest itself is shared with the snapshot store
    (:mod:`repro.snapshot.fingerprint`); the module-level cache here exists so
    tests can simulate a source edit by overriding it.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        _SOURCE_FINGERPRINT = source_fingerprint()
    return _SOURCE_FINGERPRINT

#: The four traces of Figures 21/22 (canonical TRACE_PRESETS order — the
#: default `traces` argument of those harnesses).
_TRACES = tuple(TRACE_PRESETS)

#: Per-experiment (FTL, workload) grids, taken from the harness modules so a
#: split run always enumerates exactly the cells the unsplit run would.
_CELL_GRIDS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "fig20": (_FILEBENCH, ALL_FTLS),
    "fig21": (_TRACES, TAIL_LATENCY_FTLS),
    "fig22": (_TRACES, ENERGY_FTLS),
}


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of work: run ``experiment`` with ``kwargs`` at some scale.

    ``kwargs`` is stored as a sorted tuple of (name, value) pairs so tasks are
    hashable and their cache keys canonical; :meth:`run_kwargs` restores the
    mapping (tuples for sequence values, matching the harness signatures).
    """

    experiment: str
    label: str
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(cls, experiment: str, label: str | None = None, **kwargs: Any) -> "ExperimentTask":
        frozen = tuple(
            (key, tuple(value) if isinstance(value, (list, tuple)) else value)
            for key, value in sorted(kwargs.items())
        )
        return cls(experiment=experiment, label=label or experiment, kwargs=frozen)

    def run_kwargs(self) -> dict[str, Any]:
        """The keyword arguments to pass to :func:`run_experiment`."""
        return dict(self.kwargs)

    def cache_key(self, scale: str, obs: Mapping[str, Any] | None = None) -> str:
        """Content hash identifying this task's result.

        Includes a fingerprint of the installed ``repro`` source tree, so
        editing any simulator/harness code invalidates cached results even
        without a version bump.  ``obs`` is the observability descriptor
        (window width, tracing flag) when telemetry is on: it changes the
        artifact contents (``raw.telemetry``), so it is folded into the key —
        but only when present, keeping every pre-observability key unchanged.
        """
        fields: dict[str, Any] = {
            "experiment": self.experiment,
            "scale": scale,
            "kwargs": self.kwargs,
            "version": __version__,
            "source": _source_fingerprint(),
            "schema": SCHEMA_VERSION,
        }
        if obs is not None:
            fields["obs"] = dict(obs)
        payload = json.dumps(fields, sort_keys=True, default=list)
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ExperimentOutcome:
    """Merged outcome of one experiment (all its tasks)."""

    name: str
    result: ExperimentResult | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    tasks: int = 0
    cached_tasks: int = 0
    #: Execution backend(s) that produced the fresh task results (cached
    #: entries keep the backend recorded when they were first computed).
    backend: str | None = None
    #: Sorted identities of every worker that contributed a task result.
    workers: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every task of the experiment succeeded."""
        return self.error is None and self.result is not None


# ------------------------------------------------------------------- planning
def plan_tasks(name: str, *, split: bool = True) -> list[ExperimentTask]:
    """Split one experiment into independent tasks.

    The multi-FTL experiments decompose into one task per FTL (fig14, fig19)
    or per (FTL, workload) cell (fig20, fig21, fig22); everything else runs as
    a single task.  With ``split=False`` every experiment is one task, which
    reproduces the pre-orchestrator execution exactly.
    """
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    if not split:
        return [ExperimentTask.create(name)]
    if name in ("fig14", "fig19"):
        return [
            ExperimentTask.create(name, label=f"{name}[{ftl}]", ftls=(ftl,))
            for ftl in ALL_FTLS
        ]
    if name in _CELL_GRIDS:
        workloads, ftls = _CELL_GRIDS[name]
        workload_kwarg = "workloads" if name == "fig20" else "traces"
        return [
            ExperimentTask.create(
                name,
                label=f"{name}[{workload}/{ftl}]",
                ftls=(ftl,),
                **{workload_kwarg: (workload,)},
            )
            for workload in workloads
            for ftl in ftls
        ]
    return [ExperimentTask.create(name)]


# -------------------------------------------------------------------- dry run
#: Experiment -> (warmup mode, default FTLs) for harnesses that warm devices
#: through ``prepare_ssd`` with the **default** config and timing; used by
#: ``--dry-run`` to predict snapshot-store hits.  Experiments that sweep
#: custom configs/timings ("custom") resolve their keys only at run time, and
#: experiments without a device warm-up map to ``None``.
_WARM_PLANS: dict[str, tuple[str, tuple[str, ...]] | str | None] = {
    "fig02": ("steady", ("tpftl",)),
    "fig03": "custom",
    "fig06": ("steady", BASELINE_FTLS),
    "fig07": ("fill", BASELINE_FTLS),
    "fig14": ("steady", ALL_FTLS),
    "fig15": None,
    "fig16": ("steady", ALL_FTLS),
    "fig17": ("steady", ("learnedftl",)),
    "fig18": "custom",
    "fig19": None,
    "fig20": ("fill", ALL_FTLS),
    "fig21": ("steady", TAIL_LATENCY_FTLS),
    "fig22": ("steady", ENERGY_FTLS),
    "noop": None,
    "table02": None,
    # Study cells sweep configs/geometries declared in their spec; the study
    # dry-run (repro.studies.planner.describe_study_plan) predicts their
    # snapshot keys exactly instead of going through this table.
    "studycell": "custom",
}


def _snapshot_status(task: ExperimentTask, scale: str, store: SnapshotStore | None) -> str:
    """Predicted snapshot-store status of one task (for the dry-run listing)."""
    plan = _WARM_PLANS.get(task.experiment)
    if plan is None:
        return "none needed"
    if plan == "custom":
        return "custom warm-up (keys resolved at run time)"
    if store is None:
        return "no store"
    warmup, default_ftls = plan
    ftls = task.run_kwargs().get("ftls", default_ftls)
    spec = ScaleSpec.for_scale(scale)
    recipe = warmup_recipe(
        warmup=warmup,
        io_pages=WARMUP_IO_PAGES,
        overwrite_factor=spec.warmup_overwrite_factor,
        threads=min(WARMUP_THREAD_CAP, spec.threads),
        seed=WARMUP_SEED,
    )
    hits = sum(
        1
        for ftl in ftls
        if store.contains(
            store.key_for(ftl_name=ftl, geometry=spec.geometry, recipe=recipe)
        )
    )
    return f"{hits}/{len(ftls)} warm"


def describe_plan(
    names: Sequence[str],
    *,
    scale: Scale | str = Scale.DEFAULT,
    split: bool = True,
    cache_dir: str | Path | None = None,
    snapshot_dir: str | Path | None = None,
) -> list[str]:
    """Describe what a run would do, without executing anything (``--dry-run``).

    One line per planned shard task with its result-cache status (hit/miss)
    and its predicted snapshot-store status, followed by a totals line.
    """
    scale_value = Scale.parse(scale).value
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    store = SnapshotStore(snapshot_dir) if snapshot_dir is not None else None
    lines: list[str] = []
    total = 0
    cached = 0
    for name in names:
        for task in plan_tasks(name, split=split):
            total += 1
            if cache is None:
                cache_status = "no cache"
            elif cache.load(task, scale_value) is not None:
                cache_status = "hit"
                cached += 1
            else:
                cache_status = "miss"
            lines.append(
                f"{task.label}: cache {cache_status}; "
                f"snapshots: {_snapshot_status(task, scale_value, store)}"
            )
    summary = f"{total} tasks planned at scale={scale_value}"
    if cache is not None:
        summary += f", {cached} cached, {total - cached} to run"
    lines.append(summary)
    return lines


# -------------------------------------------------------------------- merging
def _merged_notes(shards: Sequence[ExperimentResult]) -> list[str]:
    notes: list[str] = []
    for shard in shards:
        for note in shard.notes:
            if note not in notes:
                notes.append(note)
    return notes


def _deep_update(target: dict[str, Any], value: Mapping[str, Any]) -> None:
    """Recursively merge nested raw payloads (e.g. {trace: {ftl: metric}})."""
    for key, item in value.items():
        if isinstance(item, Mapping) and isinstance(target.get(key), dict):
            _deep_update(target[key], item)
        elif isinstance(item, Mapping):
            target[key] = dict(item)
        else:
            target[key] = item


def _concat(shards: Sequence[ExperimentResult], template: ExperimentResult) -> ExperimentResult:
    """Concatenate shard rows/extra tables in shard order."""
    merged = ExperimentResult(name=template.name, description=template.description)
    for shard in shards:
        merged.rows.extend(shard.rows)
        for title, rows in shard.extra_tables.items():
            merged.extra_tables.setdefault(title, []).extend(rows)
        _deep_update(merged.raw, shard.raw)
    merged.notes = _merged_notes(shards)
    return merged


def _merge_fig19(shards: Sequence[ExperimentResult]) -> ExperimentResult:
    merged = _concat(shards, shards[0])
    random_tput = merged.raw.get("readrandom_ops_s", {})
    seq_tput = merged.raw.get("readseq_ops_s", {})
    if "dftl" in random_tput:
        random_norm = normalize(random_tput, baseline="dftl")
        seq_norm = normalize(seq_tput, baseline="dftl")
        for row in merged.rows:
            row["readrandom_normalized"] = round(random_norm[row["ftl"]], 3)
            row["readseq_normalized"] = round(seq_norm[row["ftl"]], 3)
    return merged


def _merge_fig20(shards: Sequence[ExperimentResult]) -> ExperimentResult:
    merged = _concat(shards, shards[0])
    throughput: Mapping[str, Mapping[str, float]] = merged.raw.get("throughput_mb_s", {})
    rows: list[dict[str, Any]] = []
    for workload in _FILEBENCH:
        if workload not in throughput:
            continue
        per_ftl = throughput[workload]
        normalized = normalize(dict(per_ftl), baseline="dftl") if "dftl" in per_ftl else {}
        row: dict[str, Any] = {"workload": workload}
        for ftl in (f for f in ALL_FTLS if f in per_ftl):
            if normalized:
                row[f"{ftl}_normalized"] = round(normalized[ftl], 3)
            row[f"{ftl}_mb_s"] = round(per_ftl[ftl], 1)
        rows.append(row)
    merged.rows = rows
    return merged


def _merge_fig21(shards: Sequence[ExperimentResult]) -> ExperimentResult:
    merged = _concat(shards, shards[0])
    traces, ftls = _CELL_GRIDS[merged.name]
    order = {
        (trace, ftl): i
        for i, (trace, ftl) in enumerate((trace, ftl) for trace in traces for ftl in ftls)
    }
    merged.rows.sort(key=lambda row: order.get((row["workload"], row["ftl"]), len(order)))
    return merged


def _merge_fig22(shards: Sequence[ExperimentResult]) -> ExperimentResult:
    merged = _merge_fig21(shards)
    energy: Mapping[str, Mapping[str, float]] = merged.raw.get("energy_uj", {})
    rows = []
    for row in merged.rows:
        per_ftl = energy.get(row["workload"], {})
        rebuilt = {"workload": row["workload"], "ftl": row["ftl"], "energy_mj": row["energy_mj"]}
        if "tpftl" in per_ftl:
            normalized = normalize(dict(per_ftl), baseline="tpftl")
            rebuilt["normalized_energy"] = round(normalized[row["ftl"]], 3)
        rebuilt.update(
            {key: row[key] for key in ("read_mj", "program_mj", "erase_mj") if key in row}
        )
        rows.append(rebuilt)
    merged.rows = rows
    return merged


_MERGERS: dict[str, Callable[[Sequence[ExperimentResult]], ExperimentResult]] = {
    "fig19": _merge_fig19,
    "fig20": _merge_fig20,
    "fig21": _merge_fig21,
    "fig22": _merge_fig22,
}


def merge_results(
    name: str, tasks: Sequence[ExperimentTask], results: Sequence[ExperimentResult]
) -> ExperimentResult:
    """Reassemble shard results (in ``tasks`` order) into the canonical result."""
    if len(tasks) != len(results):
        raise ValueError("tasks and results must align")
    if len(results) == 1 and tasks[0].label == name:
        return results[0]
    merger = _MERGERS.get(name)
    if merger is not None:
        return merger(results)
    return _concat(results, results[0])


# -------------------------------------------------------------------- caching
class ResultCache:
    """Content-keyed on-disk cache of task results.

    One JSON file per task, named ``<label>-<key16>.json``; the full key is
    stored inside the file and checked on load, so stale entries (other
    package versions, changed kwargs, hash prefix collisions) never hit.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, task: ExperimentTask, key: str) -> Path:
        safe_label = "".join(c if c.isalnum() else "-" for c in task.label)
        return self.root / f"{safe_label}-{key[:16]}.json"

    def load_entry(
        self,
        task: ExperimentTask,
        scale: str,
        obs: Mapping[str, Any] | None = None,
    ) -> dict[str, Any] | None:
        """Return the full validated cache payload for ``task``, or ``None``.

        Unreadable or partially-written files, entries from other package
        versions/kwargs and hash-prefix collisions all miss (the full key is
        checked against the stored one).  ``obs`` is the active observability
        descriptor; results recorded under different telemetry settings never
        hit (their keys differ).
        """
        key = task.cache_key(scale, obs)
        path = self._path(task, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("key") != key or "result" not in payload:
            return None
        return payload

    def load(
        self,
        task: ExperimentTask,
        scale: str,
        obs: Mapping[str, Any] | None = None,
    ) -> tuple[ExperimentResult, float] | None:
        """Return the cached (result, original elapsed seconds) or ``None``."""
        payload = self.load_entry(task, scale, obs)
        if payload is None:
            return None
        try:
            result = ExperimentResult.from_dict(payload["result"])
        except KeyError:
            return None
        return result, float(payload.get("elapsed_s", 0.0))

    def store(
        self,
        task: ExperimentTask,
        scale: str,
        result: ExperimentResult,
        elapsed_s: float,
        provenance: Mapping[str, Any] | None = None,
        obs: Mapping[str, Any] | None = None,
    ) -> Path:
        """Persist one task result; returns the cache file path.

        The write is atomic (temp sibling + rename), so executors racing to
        publish the same key — e.g. two hosts sharing one ``--cache-dir`` —
        leave one complete entry and never a corrupt partial file.
        ``provenance`` records which backend/worker produced the result;
        ``obs`` is the observability descriptor the result was produced under
        (folded into the key and recorded in the entry).
        """
        key = task.cache_key(scale, obs)
        path = self._path(task, key)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "experiment": task.experiment,
            "label": task.label,
            "scale": scale,
            "kwargs": {name: value for name, value in task.kwargs},
            "version": __version__,
            "elapsed_s": round(elapsed_s, 3),
            "result": result.to_dict(),
        }
        if obs is not None:
            payload["obs"] = dict(obs)
        if provenance is not None:
            payload["provenance"] = dict(provenance)
        return publish_json(path, payload)


# ------------------------------------------------------------------ execution
@dataclass
class TaskExecution:
    """Execution state of one task: its result (or error) and provenance.

    This is the unit :func:`execute_tasks` returns; :func:`run_orchestrated`
    groups executions back into per-experiment outcomes and the study planner
    (:mod:`repro.studies.planner`) merges them into one study table.
    """

    task: ExperimentTask
    result: ExperimentResult | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    cached: bool = False
    #: Name of the execution backend that produced the result (restored from
    #: the cache entry on a hit), or ``None`` before execution.
    backend: str | None = None
    #: Identity of the worker (``<host>-<pid>[/<thread>]``) that ran the task.
    worker: str | None = None
    #: How many execution attempts the task took (2 = succeeded/failed on the
    #: retry pass); 0 for never-executed states.
    attempts: int = 0


def _resolve_backend_name(backend: str, workers: int, pending: int, queue_dir: Any) -> str:
    """Resolve ``auto`` to a concrete backend for this batch.

    A queue directory implies ``file-queue``; otherwise single-worker or
    single-task batches run ``serial`` (zero dispatch machinery) and the rest
    use the local ``process`` pool (the classic behavior).
    """
    if backend != "auto":
        return backend
    if queue_dir is not None:
        return "file-queue"
    if workers == 1 or pending <= 1:
        return "serial"
    return "process"


def execute_tasks(
    tasks: Sequence[ExperimentTask],
    *,
    scale: Scale | str = Scale.DEFAULT,
    jobs: int = 1,
    backend: str = "auto",
    queue_dir: str | Path | None = None,
    cache_dir: str | Path | None = None,
    snapshot_dir: str | Path | None = None,
    metrics_window_us: float | None = None,
    trace_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[TaskExecution]:
    """Execute tasks through an execution backend; returns states in task order.

    This is the planner hook shared by :func:`run_orchestrated` (which plans
    per-experiment shard tasks) and the study subsystem (which plans one task
    per scenario cell): cached task results are served from ``cache_dir``, the
    remainder run through the selected :mod:`repro.execution` backend with up
    to ``jobs`` workers (``0`` = auto-detect CPU count), every fresh result is
    written back to the cache with its backend/worker provenance, and per-task
    failures are captured as tracebacks instead of propagating.  A task that
    fails is retried once on a **fresh** backend instance (a fresh pool /
    fresh workers) before being reported failed.  ``snapshot_dir`` installs
    the shared warm-image store in whichever process each task lands in.

    ``metrics_window_us`` / ``trace_dir`` enable observability in whichever
    process each task runs in; the resulting descriptor is part of every
    cache key, so results recorded under different telemetry settings are
    never served interchangeably.
    """
    workers = resolve_workers(jobs)
    scale_value = Scale.parse(scale).value
    emit = progress or (lambda line: None)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    snapshot_arg = str(snapshot_dir) if snapshot_dir is not None else None
    trace_arg = str(trace_dir) if trace_dir is not None else None
    obs: dict[str, Any] | None = None
    if metrics_window_us is not None or trace_arg is not None:
        obs = {
            "metrics_window_us": metrics_window_us,
            "trace": trace_arg is not None,
        }

    states = [TaskExecution(task) for task in tasks]
    for state in states:
        if cache is None:
            continue
        entry = cache.load_entry(state.task, scale_value, obs)
        if entry is None:
            continue
        try:
            state.result = ExperimentResult.from_dict(entry["result"])
        except KeyError:
            continue
        state.elapsed_s = float(entry.get("elapsed_s", 0.0))
        state.cached = True
        provenance = entry.get("provenance") or {}
        state.backend = provenance.get("backend")
        state.worker = provenance.get("worker")
        state.attempts = int(provenance.get("attempts", 0))

    pending = [index for index, state in enumerate(states) if state.result is None]
    total = len(states)
    done = 0
    for state in states:
        if state.cached:
            done += 1
            emit(f"[{done:>3}/{total}] {state.task.label}: cached ({state.elapsed_s:.1f} s saved)")

    if not pending:
        return states

    backend_name = _resolve_backend_name(backend, workers, len(pending), queue_dir)

    def make_backend():
        return create_backend(backend_name, workers=workers, queue_dir=queue_dir, on_note=emit)

    def payloads_for(indices: Sequence[int]) -> list[TaskPayload]:
        return [
            TaskPayload(
                index=index,
                experiment=states[index].task.experiment,
                label=states[index].task.label,
                kwargs=states[index].task.kwargs,
                scale=scale_value,
                snapshot_dir=snapshot_arg,
                metrics_window_us=metrics_window_us,
                trace_dir=trace_arg,
            )
            for index in indices
        ]

    def run_pass(indices: Sequence[int], attempt: int) -> list[int]:
        """Run one execution pass; returns the indices that failed."""
        nonlocal done
        failed: list[int] = []
        exec_backend = make_backend()
        for completion in exec_backend.submit_all(payloads_for(indices)):
            state = states[completion.index]
            state.backend = completion.backend
            state.worker = completion.worker
            state.attempts = attempt
            if completion.error is not None:
                if attempt == 1:
                    failed.append(completion.index)
                    state.error = completion.error
                    emit(
                        f"{state.task.label}: failed on {completion.backend} worker "
                        f"{completion.worker}; retrying on a fresh worker"
                    )
                    continue
                done += 1
                state.error = (
                    f"task failed twice (backend={completion.backend}, "
                    f"last worker={completion.worker})\n{completion.error}"
                )
                emit(
                    f"[{done:>3}/{total}] {state.task.label}: FAILED on "
                    f"{completion.backend} worker {completion.worker}"
                )
                continue
            done += 1
            state.error = None
            state.result = ExperimentResult.from_dict(completion.result)
            state.elapsed_s = completion.elapsed_s
            if cache is not None:
                cache.store(
                    state.task,
                    scale_value,
                    state.result,
                    completion.elapsed_s,
                    provenance={
                        "backend": completion.backend,
                        "worker": completion.worker,
                        "attempts": attempt,
                    },
                    obs=obs,
                )
            emit(f"[{done:>3}/{total}] {state.task.label}: done in {completion.elapsed_s:.1f} s")
        return failed

    emit(f"executing {len(pending)} tasks via {make_backend().describe()}")
    retries = run_pass(pending, attempt=1)
    if retries:
        # A fresh backend instance means fresh workers (a new pool, or new
        # file-queue worker processes), so a crashed worker can't poison the
        # retry pass.
        run_pass(retries, attempt=2)
    return states


def run_orchestrated(
    names: Sequence[str],
    *,
    scale: Scale | str = Scale.DEFAULT,
    jobs: int = 1,
    backend: str = "auto",
    queue_dir: str | Path | None = None,
    split: bool = True,
    cache_dir: str | Path | None = None,
    snapshot_dir: str | Path | None = None,
    metrics_window_us: float | None = None,
    trace_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[ExperimentOutcome]:
    """Run experiments (possibly sharded) through an execution backend.

    Every experiment is planned into tasks, cached task results are reused,
    the remaining tasks execute through the selected backend with up to
    ``jobs`` workers, and shard results are merged back into one
    :class:`ExperimentResult` per experiment — identical for any backend and
    any ``jobs`` value.  A failing task marks its experiment failed (with the
    traceback in :attr:`ExperimentOutcome.error`) without stopping the batch.

    ``snapshot_dir`` points every task at a shared warm-image store (see
    :mod:`repro.snapshot`): tasks restore warmed devices instead of re-paying
    the fill/overwrite phase, with results bit-identical either way.
    ``metrics_window_us`` / ``trace_dir`` turn on windowed telemetry and
    event tracing inside every task (see :mod:`repro.obs`); the per-window
    series ride back in each result's ``raw["telemetry"]`` block.
    """
    planned: dict[str, list[ExperimentTask]] = {
        name: plan_tasks(name, split=split) for name in names
    }
    states = execute_tasks(
        [task for group in planned.values() for task in group],
        scale=scale,
        jobs=jobs,
        backend=backend,
        queue_dir=queue_dir,
        cache_dir=cache_dir,
        snapshot_dir=snapshot_dir,
        metrics_window_us=metrics_window_us,
        trace_dir=trace_dir,
        progress=progress,
    )
    plan: dict[str, list[TaskExecution]] = {}
    cursor = 0
    for name, group_tasks in planned.items():
        plan[name] = states[cursor : cursor + len(group_tasks)]
        cursor += len(group_tasks)

    outcomes: list[ExperimentOutcome] = []
    for name, group in plan.items():
        backends = sorted({state.backend for state in group if state.backend})
        outcome = ExperimentOutcome(
            name=name,
            tasks=len(group),
            cached_tasks=sum(1 for state in group if state.cached),
            elapsed_s=sum(state.elapsed_s for state in group),
            backend="+".join(backends) if backends else None,
            workers=sorted({state.worker for state in group if state.worker}),
        )
        errors = [state for state in group if state.error is not None]
        if errors:
            outcome.error = "\n".join(
                f"task {state.task.label} failed:\n{state.error}" for state in errors
            )
        else:
            try:
                outcome.result = merge_results(
                    name, [state.task for state in group], [state.result for state in group]
                )
            except Exception:
                outcome.error = f"merging {name} failed:\n{traceback.format_exc()}"
        outcomes.append(outcome)
    return outcomes


# ------------------------------------------------------------------ artifacts
def _json_safe(value: Any) -> Any:
    """Replace non-finite floats (inf/nan from degenerate normalizations) with
    strings so artifacts stay valid RFC 8259 JSON for external consumers."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, Mapping):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def write_json_artifact(
    directory: str | Path, outcome: ExperimentOutcome, scale: Scale | str
) -> Path:
    """Write one experiment's machine-readable artifact; returns the path."""
    if not outcome.ok:
        raise ValueError(f"cannot write artifact for failed experiment {outcome.name}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    result = outcome.result
    payload = {
        "schema_version": SCHEMA_VERSION,
        "experiment": outcome.name,
        "description": result.description,
        "scale": Scale.parse(scale).value,
        "elapsed_s": round(outcome.elapsed_s, 3),
        "tasks": outcome.tasks,
        "cached_tasks": outcome.cached_tasks,
        "execution": {
            "backend": outcome.backend,
            "workers": outcome.workers,
        },
        "rows": result.rows,
        "notes": result.notes,
        "extra_tables": result.extra_tables,
        "raw": result.raw,
    }
    path = directory / f"{outcome.name}.json"
    return publish_text(
        path,
        json.dumps(_json_safe(payload), indent=2, sort_keys=True, allow_nan=False),
    )
