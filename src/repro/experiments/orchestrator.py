"""Parallel experiment orchestration with result caching.

The evaluation of the paper is 14 independent figure/table experiments, and
the heavyweight ones (fig14, fig19-fig22) are themselves products of
independent (FTL, workload) cells.  This module turns that structure into a
task graph the CLI can execute across a :class:`~concurrent.futures.ProcessPoolExecutor`:

* :func:`plan_tasks` splits an experiment into shard tasks (one per FTL or per
  (FTL, trace)/(workload, FTL) cell for the multi-FTL experiments, a single
  task otherwise);
* :func:`run_orchestrated` executes tasks — in-process for ``jobs=1``, across
  worker processes otherwise — streaming per-task progress, caching each
  task's result on disk keyed by its content (experiment, scale, kwargs,
  package version), and tolerating per-experiment failures;
* :func:`merge_results` reassembles shard results into exactly the rows the
  unsplit harness produces, recomputing cross-FTL normalized columns from the
  unrounded metrics the harnesses expose via ``ExperimentResult.raw``.

Because every task is deterministic given (experiment, scale, kwargs), the
merged output is identical for any ``--jobs`` value, and a warm cache makes
re-running ``all`` nearly free.
"""

from __future__ import annotations

import hashlib
import json
import math
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from repro import __version__
from repro.analysis.latency import normalize
from repro.experiments import EXPERIMENTS, run_experiment
from repro.experiments.fig20_filebench import WORKLOADS as _FILEBENCH
from repro.experiments.fig21_tail_latency import TAIL_LATENCY_FTLS
from repro.experiments.fig22_energy import ENERGY_FTLS
from repro.experiments.runner import (
    ALL_FTLS,
    BASELINE_FTLS,
    WARMUP_IO_PAGES,
    WARMUP_SEED,
    WARMUP_THREAD_CAP,
    ExperimentResult,
    Scale,
    ScaleSpec,
    set_snapshot_dir,
)
from repro.snapshot.fingerprint import source_fingerprint
from repro.snapshot.store import SnapshotStore
from repro.snapshot.warm import warmup_recipe
from repro.workloads.traces import TRACE_PRESETS

__all__ = [
    "SCHEMA_VERSION",
    "ExperimentTask",
    "ExperimentOutcome",
    "TaskExecution",
    "ResultCache",
    "plan_tasks",
    "describe_plan",
    "merge_results",
    "execute_tasks",
    "run_orchestrated",
]

#: Version of the on-disk JSON artifact / cache entry layout.
#: v2: artifacts carry the harness's machine-readable ``raw`` section (which
#: now includes per-device ``iops`` / ``read_p999_us`` / ``utilization`` for
#: the performance experiments).
SCHEMA_VERSION = 2

_SOURCE_FINGERPRINT: str | None = None


def _source_fingerprint() -> str:
    """Digest of every ``repro`` source file (computed once per process).

    Folding this into the cache key means cached experiment results go stale
    the moment any simulator or harness code changes — not only on version
    bumps.  The digest itself is shared with the snapshot store
    (:mod:`repro.snapshot.fingerprint`); the module-level cache here exists so
    tests can simulate a source edit by overriding it.
    """
    global _SOURCE_FINGERPRINT
    if _SOURCE_FINGERPRINT is None:
        _SOURCE_FINGERPRINT = source_fingerprint()
    return _SOURCE_FINGERPRINT

#: The four traces of Figures 21/22 (canonical TRACE_PRESETS order — the
#: default `traces` argument of those harnesses).
_TRACES = tuple(TRACE_PRESETS)

#: Per-experiment (FTL, workload) grids, taken from the harness modules so a
#: split run always enumerates exactly the cells the unsplit run would.
_CELL_GRIDS: dict[str, tuple[tuple[str, ...], tuple[str, ...]]] = {
    "fig20": (_FILEBENCH, ALL_FTLS),
    "fig21": (_TRACES, TAIL_LATENCY_FTLS),
    "fig22": (_TRACES, ENERGY_FTLS),
}


@dataclass(frozen=True)
class ExperimentTask:
    """One unit of work: run ``experiment`` with ``kwargs`` at some scale.

    ``kwargs`` is stored as a sorted tuple of (name, value) pairs so tasks are
    hashable and their cache keys canonical; :meth:`run_kwargs` restores the
    mapping (tuples for sequence values, matching the harness signatures).
    """

    experiment: str
    label: str
    kwargs: tuple[tuple[str, Any], ...] = ()

    @classmethod
    def create(cls, experiment: str, label: str | None = None, **kwargs: Any) -> "ExperimentTask":
        frozen = tuple(
            (key, tuple(value) if isinstance(value, (list, tuple)) else value)
            for key, value in sorted(kwargs.items())
        )
        return cls(experiment=experiment, label=label or experiment, kwargs=frozen)

    def run_kwargs(self) -> dict[str, Any]:
        """The keyword arguments to pass to :func:`run_experiment`."""
        return dict(self.kwargs)

    def cache_key(self, scale: str) -> str:
        """Content hash identifying this task's result.

        Includes a fingerprint of the installed ``repro`` source tree, so
        editing any simulator/harness code invalidates cached results even
        without a version bump.
        """
        payload = json.dumps(
            {
                "experiment": self.experiment,
                "scale": scale,
                "kwargs": self.kwargs,
                "version": __version__,
                "source": _source_fingerprint(),
                "schema": SCHEMA_VERSION,
            },
            sort_keys=True,
            default=list,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass
class ExperimentOutcome:
    """Merged outcome of one experiment (all its tasks)."""

    name: str
    result: ExperimentResult | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    tasks: int = 0
    cached_tasks: int = 0

    @property
    def ok(self) -> bool:
        """True when every task of the experiment succeeded."""
        return self.error is None and self.result is not None


# ------------------------------------------------------------------- planning
def plan_tasks(name: str, *, split: bool = True) -> list[ExperimentTask]:
    """Split one experiment into independent tasks.

    The multi-FTL experiments decompose into one task per FTL (fig14, fig19)
    or per (FTL, workload) cell (fig20, fig21, fig22); everything else runs as
    a single task.  With ``split=False`` every experiment is one task, which
    reproduces the pre-orchestrator execution exactly.
    """
    if name not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {name!r}; choose from {sorted(EXPERIMENTS)}")
    if not split:
        return [ExperimentTask.create(name)]
    if name in ("fig14", "fig19"):
        return [
            ExperimentTask.create(name, label=f"{name}[{ftl}]", ftls=(ftl,))
            for ftl in ALL_FTLS
        ]
    if name in _CELL_GRIDS:
        workloads, ftls = _CELL_GRIDS[name]
        workload_kwarg = "workloads" if name == "fig20" else "traces"
        return [
            ExperimentTask.create(
                name,
                label=f"{name}[{workload}/{ftl}]",
                ftls=(ftl,),
                **{workload_kwarg: (workload,)},
            )
            for workload in workloads
            for ftl in ftls
        ]
    return [ExperimentTask.create(name)]


# -------------------------------------------------------------------- dry run
#: Experiment -> (warmup mode, default FTLs) for harnesses that warm devices
#: through ``prepare_ssd`` with the **default** config and timing; used by
#: ``--dry-run`` to predict snapshot-store hits.  Experiments that sweep
#: custom configs/timings ("custom") resolve their keys only at run time, and
#: experiments without a device warm-up map to ``None``.
_WARM_PLANS: dict[str, tuple[str, tuple[str, ...]] | str | None] = {
    "fig02": ("steady", ("tpftl",)),
    "fig03": "custom",
    "fig06": ("steady", BASELINE_FTLS),
    "fig07": ("fill", BASELINE_FTLS),
    "fig14": ("steady", ALL_FTLS),
    "fig15": None,
    "fig16": ("steady", ALL_FTLS),
    "fig17": ("steady", ("learnedftl",)),
    "fig18": "custom",
    "fig19": None,
    "fig20": ("fill", ALL_FTLS),
    "fig21": ("steady", TAIL_LATENCY_FTLS),
    "fig22": ("steady", ENERGY_FTLS),
    "table02": None,
    # Study cells sweep configs/geometries declared in their spec; the study
    # dry-run (repro.studies.planner.describe_study_plan) predicts their
    # snapshot keys exactly instead of going through this table.
    "studycell": "custom",
}


def _snapshot_status(task: ExperimentTask, scale: str, store: SnapshotStore | None) -> str:
    """Predicted snapshot-store status of one task (for the dry-run listing)."""
    plan = _WARM_PLANS.get(task.experiment)
    if plan is None:
        return "none needed"
    if plan == "custom":
        return "custom warm-up (keys resolved at run time)"
    if store is None:
        return "no store"
    warmup, default_ftls = plan
    ftls = task.run_kwargs().get("ftls", default_ftls)
    spec = ScaleSpec.for_scale(scale)
    recipe = warmup_recipe(
        warmup=warmup,
        io_pages=WARMUP_IO_PAGES,
        overwrite_factor=spec.warmup_overwrite_factor,
        threads=min(WARMUP_THREAD_CAP, spec.threads),
        seed=WARMUP_SEED,
    )
    hits = sum(
        1
        for ftl in ftls
        if store.contains(
            store.key_for(ftl_name=ftl, geometry=spec.geometry, recipe=recipe)
        )
    )
    return f"{hits}/{len(ftls)} warm"


def describe_plan(
    names: Sequence[str],
    *,
    scale: Scale | str = Scale.DEFAULT,
    split: bool = True,
    cache_dir: str | Path | None = None,
    snapshot_dir: str | Path | None = None,
) -> list[str]:
    """Describe what a run would do, without executing anything (``--dry-run``).

    One line per planned shard task with its result-cache status (hit/miss)
    and its predicted snapshot-store status, followed by a totals line.
    """
    scale_value = Scale.parse(scale).value
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    store = SnapshotStore(snapshot_dir) if snapshot_dir is not None else None
    lines: list[str] = []
    total = 0
    cached = 0
    for name in names:
        for task in plan_tasks(name, split=split):
            total += 1
            if cache is None:
                cache_status = "no cache"
            elif cache.load(task, scale_value) is not None:
                cache_status = "hit"
                cached += 1
            else:
                cache_status = "miss"
            lines.append(
                f"{task.label}: cache {cache_status}; "
                f"snapshots: {_snapshot_status(task, scale_value, store)}"
            )
    summary = f"{total} tasks planned at scale={scale_value}"
    if cache is not None:
        summary += f", {cached} cached, {total - cached} to run"
    lines.append(summary)
    return lines


# -------------------------------------------------------------------- merging
def _merged_notes(shards: Sequence[ExperimentResult]) -> list[str]:
    notes: list[str] = []
    for shard in shards:
        for note in shard.notes:
            if note not in notes:
                notes.append(note)
    return notes


def _deep_update(target: dict[str, Any], value: Mapping[str, Any]) -> None:
    """Recursively merge nested raw payloads (e.g. {trace: {ftl: metric}})."""
    for key, item in value.items():
        if isinstance(item, Mapping) and isinstance(target.get(key), dict):
            _deep_update(target[key], item)
        elif isinstance(item, Mapping):
            target[key] = dict(item)
        else:
            target[key] = item


def _concat(shards: Sequence[ExperimentResult], template: ExperimentResult) -> ExperimentResult:
    """Concatenate shard rows/extra tables in shard order."""
    merged = ExperimentResult(name=template.name, description=template.description)
    for shard in shards:
        merged.rows.extend(shard.rows)
        for title, rows in shard.extra_tables.items():
            merged.extra_tables.setdefault(title, []).extend(rows)
        _deep_update(merged.raw, shard.raw)
    merged.notes = _merged_notes(shards)
    return merged


def _merge_fig19(shards: Sequence[ExperimentResult]) -> ExperimentResult:
    merged = _concat(shards, shards[0])
    random_tput = merged.raw.get("readrandom_ops_s", {})
    seq_tput = merged.raw.get("readseq_ops_s", {})
    if "dftl" in random_tput:
        random_norm = normalize(random_tput, baseline="dftl")
        seq_norm = normalize(seq_tput, baseline="dftl")
        for row in merged.rows:
            row["readrandom_normalized"] = round(random_norm[row["ftl"]], 3)
            row["readseq_normalized"] = round(seq_norm[row["ftl"]], 3)
    return merged


def _merge_fig20(shards: Sequence[ExperimentResult]) -> ExperimentResult:
    merged = _concat(shards, shards[0])
    throughput: Mapping[str, Mapping[str, float]] = merged.raw.get("throughput_mb_s", {})
    rows: list[dict[str, Any]] = []
    for workload in _FILEBENCH:
        if workload not in throughput:
            continue
        per_ftl = throughput[workload]
        normalized = normalize(dict(per_ftl), baseline="dftl") if "dftl" in per_ftl else {}
        row: dict[str, Any] = {"workload": workload}
        for ftl in (f for f in ALL_FTLS if f in per_ftl):
            if normalized:
                row[f"{ftl}_normalized"] = round(normalized[ftl], 3)
            row[f"{ftl}_mb_s"] = round(per_ftl[ftl], 1)
        rows.append(row)
    merged.rows = rows
    return merged


def _merge_fig21(shards: Sequence[ExperimentResult]) -> ExperimentResult:
    merged = _concat(shards, shards[0])
    traces, ftls = _CELL_GRIDS[merged.name]
    order = {
        (trace, ftl): i
        for i, (trace, ftl) in enumerate((trace, ftl) for trace in traces for ftl in ftls)
    }
    merged.rows.sort(key=lambda row: order.get((row["workload"], row["ftl"]), len(order)))
    return merged


def _merge_fig22(shards: Sequence[ExperimentResult]) -> ExperimentResult:
    merged = _merge_fig21(shards)
    energy: Mapping[str, Mapping[str, float]] = merged.raw.get("energy_uj", {})
    rows = []
    for row in merged.rows:
        per_ftl = energy.get(row["workload"], {})
        rebuilt = {"workload": row["workload"], "ftl": row["ftl"], "energy_mj": row["energy_mj"]}
        if "tpftl" in per_ftl:
            normalized = normalize(dict(per_ftl), baseline="tpftl")
            rebuilt["normalized_energy"] = round(normalized[row["ftl"]], 3)
        rebuilt.update(
            {key: row[key] for key in ("read_mj", "program_mj", "erase_mj") if key in row}
        )
        rows.append(rebuilt)
    merged.rows = rows
    return merged


_MERGERS: dict[str, Callable[[Sequence[ExperimentResult]], ExperimentResult]] = {
    "fig19": _merge_fig19,
    "fig20": _merge_fig20,
    "fig21": _merge_fig21,
    "fig22": _merge_fig22,
}


def merge_results(
    name: str, tasks: Sequence[ExperimentTask], results: Sequence[ExperimentResult]
) -> ExperimentResult:
    """Reassemble shard results (in ``tasks`` order) into the canonical result."""
    if len(tasks) != len(results):
        raise ValueError("tasks and results must align")
    if len(results) == 1 and tasks[0].label == name:
        return results[0]
    merger = _MERGERS.get(name)
    if merger is not None:
        return merger(results)
    return _concat(results, results[0])


# -------------------------------------------------------------------- caching
class ResultCache:
    """Content-keyed on-disk cache of task results.

    One JSON file per task, named ``<label>-<key16>.json``; the full key is
    stored inside the file and checked on load, so stale entries (other
    package versions, changed kwargs, hash prefix collisions) never hit.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, task: ExperimentTask, key: str) -> Path:
        safe_label = "".join(c if c.isalnum() else "-" for c in task.label)
        return self.root / f"{safe_label}-{key[:16]}.json"

    def load(self, task: ExperimentTask, scale: str) -> tuple[ExperimentResult, float] | None:
        """Return the cached (result, original elapsed seconds) or ``None``."""
        key = task.cache_key(scale)
        path = self._path(task, key)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if payload.get("key") != key:
            return None
        try:
            result = ExperimentResult.from_dict(payload["result"])
        except KeyError:
            return None
        return result, float(payload.get("elapsed_s", 0.0))

    def store(
        self, task: ExperimentTask, scale: str, result: ExperimentResult, elapsed_s: float
    ) -> Path:
        """Persist one task result; returns the cache file path."""
        key = task.cache_key(scale)
        path = self._path(task, key)
        payload = {
            "schema_version": SCHEMA_VERSION,
            "key": key,
            "experiment": task.experiment,
            "label": task.label,
            "scale": scale,
            "kwargs": {name: value for name, value in task.kwargs},
            "version": __version__,
            "elapsed_s": round(elapsed_s, 3),
            "result": result.to_dict(),
        }
        path.write_text(json.dumps(payload, sort_keys=True), encoding="utf-8")
        return path


# ------------------------------------------------------------------ execution
def _execute_task(
    experiment: str,
    scale: str,
    kwargs: dict[str, Any],
    snapshot_dir: str | None = None,
) -> tuple[dict, float]:
    """Worker entry point: run one task and return (result dict, elapsed seconds).

    Module-level so it pickles for :class:`ProcessPoolExecutor`; results cross
    the process boundary as plain dicts.  ``snapshot_dir`` installs the shared
    warm-image store in whichever process the task lands in — the first task
    to warm a given (FTL, geometry, recipe) publishes the image, every other
    task (in any process) restores it.
    """
    set_snapshot_dir(snapshot_dir)
    started = time.perf_counter()
    result = run_experiment(experiment, scale=scale, **kwargs)
    return result.to_dict(), time.perf_counter() - started


@dataclass
class TaskExecution:
    """Execution state of one task: its result (or error) and provenance.

    This is the unit :func:`execute_tasks` returns; :func:`run_orchestrated`
    groups executions back into per-experiment outcomes and the study planner
    (:mod:`repro.studies.planner`) merges them into one study table.
    """

    task: ExperimentTask
    result: ExperimentResult | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    cached: bool = False


def execute_tasks(
    tasks: Sequence[ExperimentTask],
    *,
    scale: Scale | str = Scale.DEFAULT,
    jobs: int = 1,
    cache_dir: str | Path | None = None,
    snapshot_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[TaskExecution]:
    """Execute tasks across up to ``jobs`` processes; returns states in task order.

    This is the planner hook shared by :func:`run_orchestrated` (which plans
    per-experiment shard tasks) and the study subsystem (which plans one task
    per scenario cell): cached task results are served from ``cache_dir``,
    the remainder run in-process (``jobs=1``) or across a
    :class:`ProcessPoolExecutor`, every fresh result is written back to the
    cache, and per-task failures are captured as tracebacks instead of
    propagating.  ``snapshot_dir`` installs the shared warm-image store in
    whichever process each task lands in.
    """
    if jobs <= 0:
        raise ValueError("jobs must be positive")
    scale_value = Scale.parse(scale).value
    emit = progress or (lambda line: None)
    cache = ResultCache(cache_dir) if cache_dir is not None else None
    snapshot_arg = str(snapshot_dir) if snapshot_dir is not None else None

    states = [TaskExecution(task) for task in tasks]
    for state in states:
        if cache is None:
            continue
        hit = cache.load(state.task, scale_value)
        if hit is not None:
            state.result, state.elapsed_s = hit
            state.cached = True

    pending = [state for state in states if state.result is None]
    total = len(states)
    done = 0
    for state in states:
        if state.cached:
            done += 1
            emit(f"[{done:>3}/{total}] {state.task.label}: cached ({state.elapsed_s:.1f} s saved)")

    def finish(state: TaskExecution, payload: tuple[dict, float] | None, error: str | None) -> None:
        nonlocal done
        done += 1
        if error is not None:
            state.error = error
            emit(f"[{done:>3}/{total}] {state.task.label}: FAILED")
            return
        result_dict, elapsed = payload  # type: ignore[misc]
        state.result = ExperimentResult.from_dict(result_dict)
        state.elapsed_s = elapsed
        if cache is not None:
            cache.store(state.task, scale_value, state.result, elapsed)
        emit(f"[{done:>3}/{total}] {state.task.label}: done in {elapsed:.1f} s")

    if jobs == 1 or len(pending) <= 1:
        for state in pending:
            try:
                payload = _execute_task(
                    state.task.experiment, scale_value, state.task.run_kwargs(), snapshot_arg
                )
            except Exception:
                finish(state, None, traceback.format_exc())
            else:
                finish(state, payload, None)
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as pool:
            futures = {
                pool.submit(
                    _execute_task,
                    state.task.experiment,
                    scale_value,
                    state.task.run_kwargs(),
                    snapshot_arg,
                ): state
                for state in pending
            }
            for future in as_completed(futures):
                state = futures[future]
                try:
                    payload = future.result()
                except Exception:
                    finish(state, None, traceback.format_exc())
                else:
                    finish(state, payload, None)
    return states


def run_orchestrated(
    names: Sequence[str],
    *,
    scale: Scale | str = Scale.DEFAULT,
    jobs: int = 1,
    split: bool = True,
    cache_dir: str | Path | None = None,
    snapshot_dir: str | Path | None = None,
    progress: Callable[[str], None] | None = None,
) -> list[ExperimentOutcome]:
    """Run experiments (possibly sharded) across up to ``jobs`` processes.

    Every experiment is planned into tasks, cached task results are reused,
    the remaining tasks execute in parallel, and shard results are merged back
    into one :class:`ExperimentResult` per experiment — identical for any
    ``jobs`` value.  A failing task marks its experiment failed (with the
    traceback in :attr:`ExperimentOutcome.error`) without stopping the batch.

    ``snapshot_dir`` points every task at a shared warm-image store (see
    :mod:`repro.snapshot`): tasks restore warmed devices instead of re-paying
    the fill/overwrite phase, with results bit-identical either way.
    """
    planned: dict[str, list[ExperimentTask]] = {
        name: plan_tasks(name, split=split) for name in names
    }
    states = execute_tasks(
        [task for group in planned.values() for task in group],
        scale=scale,
        jobs=jobs,
        cache_dir=cache_dir,
        snapshot_dir=snapshot_dir,
        progress=progress,
    )
    plan: dict[str, list[TaskExecution]] = {}
    cursor = 0
    for name, group_tasks in planned.items():
        plan[name] = states[cursor : cursor + len(group_tasks)]
        cursor += len(group_tasks)

    outcomes: list[ExperimentOutcome] = []
    for name, group in plan.items():
        outcome = ExperimentOutcome(
            name=name,
            tasks=len(group),
            cached_tasks=sum(1 for state in group if state.cached),
            elapsed_s=sum(state.elapsed_s for state in group),
        )
        errors = [state for state in group if state.error is not None]
        if errors:
            outcome.error = "\n".join(
                f"task {state.task.label} failed:\n{state.error}" for state in errors
            )
        else:
            try:
                outcome.result = merge_results(
                    name, [state.task for state in group], [state.result for state in group]
                )
            except Exception:
                outcome.error = f"merging {name} failed:\n{traceback.format_exc()}"
        outcomes.append(outcome)
    return outcomes


# ------------------------------------------------------------------ artifacts
def _json_safe(value: Any) -> Any:
    """Replace non-finite floats (inf/nan from degenerate normalizations) with
    strings so artifacts stay valid RFC 8259 JSON for external consumers."""
    if isinstance(value, float) and not math.isfinite(value):
        return str(value)
    if isinstance(value, Mapping):
        return {key: _json_safe(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return value


def write_json_artifact(
    directory: str | Path, outcome: ExperimentOutcome, scale: Scale | str
) -> Path:
    """Write one experiment's machine-readable artifact; returns the path."""
    if not outcome.ok:
        raise ValueError(f"cannot write artifact for failed experiment {outcome.name}")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    result = outcome.result
    payload = {
        "schema_version": SCHEMA_VERSION,
        "experiment": outcome.name,
        "description": result.description,
        "scale": Scale.parse(scale).value,
        "elapsed_s": round(outcome.elapsed_s, 3),
        "tasks": outcome.tasks,
        "cached_tasks": outcome.cached_tasks,
        "rows": result.rows,
        "notes": result.notes,
        "extra_tables": result.extra_tables,
        "raw": result.raw,
    }
    path = directory / f"{outcome.name}.json"
    path.write_text(
        json.dumps(_json_safe(payload), indent=2, sort_keys=True, allow_nan=False),
        encoding="utf-8",
    )
    return path
