"""A miniature LSM-tree key-value store ("RocksDB" stand-in) plus db_bench.

The paper evaluates RocksDB with ``db_bench`` (Section IV-D): the store is
filled with *fillseq* and *overwrite*, then *readrandom* and *readseq* measure
read performance.  The property that matters to the FTL is structural: an
LSM-tree converts random writes into large sequential writes (memtable flushes
and compactions) but spreads the pages of logically-adjacent keys over many
SSTable files, so random point lookups become random single-page reads over a
large LPN range — precisely the access pattern that defeats a demand-based
mapping cache.

:class:`MiniLSM` implements that structure directly on top of the simulated
SSD: a memtable, levelled SSTables stored as contiguous LPN extents, bloom
filters, flush and compaction.  :class:`DbBench` reproduces the four db_bench
phases used in the paper.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.nand.errors import ConfigurationError
from repro.ssd.device import SSD
from repro.ssd.request import HostRequest, OpType

__all__ = ["ExtentAllocator", "SSTable", "MiniLSM", "DbBench"]


class ExtentAllocator:
    """First-fit allocator of contiguous LPN extents (a toy file system)."""

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise ConfigurationError("extent allocator needs a positive page count")
        self._free: list[tuple[int, int]] = [(0, num_pages)]  # (start, length)

    def allocate(self, npages: int) -> int:
        """Allocate ``npages`` contiguous LPNs and return the first one."""
        if npages <= 0:
            raise ConfigurationError("extent length must be positive")
        for index, (start, length) in enumerate(self._free):
            if length >= npages:
                if length == npages:
                    del self._free[index]
                else:
                    self._free[index] = (start + npages, length - npages)
                return start
        raise ConfigurationError("extent allocator out of space")

    def free(self, start: int, npages: int) -> None:
        """Return an extent; adjacent free extents are coalesced."""
        self._free.append((start, npages))
        self._free.sort()
        merged: list[tuple[int, int]] = []
        for extent_start, extent_len in self._free:
            if merged and merged[-1][0] + merged[-1][1] == extent_start:
                merged[-1] = (merged[-1][0], merged[-1][1] + extent_len)
            else:
                merged.append((extent_start, extent_len))
        self._free = merged

    def free_pages(self) -> int:
        """Total free pages remaining."""
        return sum(length for _, length in self._free)


@dataclass
class SSTable:
    """One sorted-string-table file stored as a contiguous LPN extent."""

    table_id: int
    level: int
    keys: list[int]
    start_lpn: int
    entries_per_page: int

    @property
    def npages(self) -> int:
        """Number of pages occupied by the table."""
        return max(1, -(-len(self.keys) // self.entries_per_page))

    @property
    def min_key(self) -> int:
        """Smallest key stored."""
        return self.keys[0]

    @property
    def max_key(self) -> int:
        """Largest key stored."""
        return self.keys[-1]

    def covers(self, key: int) -> bool:
        """True when the key falls inside the table's key range."""
        return self.min_key <= key <= self.max_key

    def contains(self, key: int) -> bool:
        """Exact membership (stands in for the bloom filter + index block)."""
        import bisect

        index = bisect.bisect_left(self.keys, key)
        return index < len(self.keys) and self.keys[index] == key

    def page_of(self, key: int) -> int:
        """LPN of the data block holding the key (in-memory index lookup)."""
        import bisect

        index = bisect.bisect_left(self.keys, key)
        return self.start_lpn + min(index, len(self.keys) - 1) // self.entries_per_page


@dataclass
class LSMStats:
    """Operation counters of the mini LSM-tree."""

    puts: int = 0
    gets: int = 0
    flushes: int = 0
    compactions: int = 0
    sstables_written: int = 0
    bloom_false_positives: int = 0


class MiniLSM:
    """Levelled LSM-tree running on a simulated SSD."""

    def __init__(
        self,
        ssd: SSD,
        *,
        memtable_entries: int = 1024,
        entries_per_page: int = 16,
        l0_table_limit: int = 4,
        level_size_ratio: int = 4,
        capacity_fraction: float = 0.9,
        bloom_false_positive_rate: float = 0.01,
        seed: int = 3,
    ) -> None:
        if memtable_entries <= 0 or entries_per_page <= 0:
            raise ConfigurationError("memtable_entries and entries_per_page must be positive")
        self.ssd = ssd
        self.memtable_entries = memtable_entries
        self.entries_per_page = entries_per_page
        self.l0_table_limit = l0_table_limit
        self.level_size_ratio = level_size_ratio
        self.bloom_false_positive_rate = bloom_false_positive_rate
        self._rng = random.Random(seed)
        usable = int(ssd.geometry.num_logical_pages * capacity_fraction)
        self.extents = ExtentAllocator(usable)
        self.memtable: dict[int, int] = {}
        self.levels: list[list[SSTable]] = [[]]
        self.stats = LSMStats()
        self._next_table_id = 0
        self._version = 0

    # ----------------------------------------------------------------- write
    def put(self, key: int) -> None:
        """Insert or update a key."""
        self._version += 1
        self.memtable[key] = self._version
        self.stats.puts += 1
        if len(self.memtable) >= self.memtable_entries:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Sort the memtable and write it to a fresh L0 SSTable."""
        if not self.memtable:
            return
        keys = sorted(self.memtable)
        self.memtable.clear()
        table = self._write_sstable(keys, level=0)
        self.levels[0].insert(0, table)
        self.stats.flushes += 1
        if len(self.levels[0]) > self.l0_table_limit:
            self.compact(0)

    def _write_sstable(self, keys: list[int], level: int) -> SSTable:
        npages = max(1, -(-len(keys) // self.entries_per_page))
        start_lpn = self.extents.allocate(npages)
        self.ssd.submit(HostRequest(op=OpType.WRITE, lpn=start_lpn, npages=npages))
        self.stats.sstables_written += 1
        table = SSTable(
            table_id=self._next_table_id,
            level=level,
            keys=keys,
            start_lpn=start_lpn,
            entries_per_page=self.entries_per_page,
        )
        self._next_table_id += 1
        return table

    # ------------------------------------------------------------ compaction
    def compact(self, level: int) -> None:
        """Merge a level into the next one (size-tiered at L0, levelled below)."""
        while len(self.levels) <= level + 1:
            self.levels.append([])
        source = self.levels[level]
        if not source:
            return
        key_min = min(t.min_key for t in source)
        key_max = max(t.max_key for t in source)
        target = self.levels[level + 1]
        overlapping = [t for t in target if not (t.max_key < key_min or t.min_key > key_max)]
        untouched = [t for t in target if t not in overlapping]
        merge_inputs = source + overlapping
        merged_keys = sorted({key for table in merge_inputs for key in table.keys})
        # Compaction reads every input page and writes the merged output.
        for table in merge_inputs:
            self.ssd.submit(
                HostRequest(op=OpType.READ, lpn=table.start_lpn, npages=table.npages)
            )
        new_tables: list[SSTable] = []
        max_keys_per_table = self.memtable_entries * self.level_size_ratio
        for chunk_start in range(0, len(merged_keys), max_keys_per_table):
            chunk = merged_keys[chunk_start : chunk_start + max_keys_per_table]
            new_tables.append(self._write_sstable(chunk, level=level + 1))
        for table in merge_inputs:
            self.extents.free(table.start_lpn, table.npages)
        self.levels[level] = []
        self.levels[level + 1] = sorted(untouched + new_tables, key=lambda t: t.min_key)
        self.stats.compactions += 1
        # Cascade when the next level grew beyond its budget.
        level_budget = self.l0_table_limit * (self.level_size_ratio ** (level + 1))
        if len(self.levels[level + 1]) > level_budget:
            self.compact(level + 1)

    # ------------------------------------------------------------------ read
    def get(self, key: int) -> bool:
        """Point lookup; returns whether the key exists.

        Every SSTable probe that passes the (simulated) bloom filter costs one
        single-page read on the SSD, mirroring RocksDB's data-block read.
        """
        self.stats.gets += 1
        if key in self.memtable:
            return True
        for level, tables in enumerate(self.levels):
            iterable = tables if level == 0 else self._candidates(tables, key)
            for table in iterable:
                if not table.covers(key):
                    continue
                if table.contains(key):
                    self.ssd.submit(HostRequest(op=OpType.READ, lpn=table.page_of(key), npages=1))
                    return True
                if self._rng.random() < self.bloom_false_positive_rate:
                    self.stats.bloom_false_positives += 1
                    self.ssd.submit(HostRequest(op=OpType.READ, lpn=table.page_of(key), npages=1))
        return False

    @staticmethod
    def _candidates(tables: list[SSTable], key: int) -> Iterator[SSTable]:
        for table in tables:
            if table.covers(key):
                yield table
                return

    def scan_all(self) -> int:
        """Full-key-order scan (db_bench ``readseq``); returns pages read."""
        pages = 0
        for tables in self.levels:
            for table in tables:
                self.ssd.submit(
                    HostRequest(op=OpType.READ, lpn=table.start_lpn, npages=table.npages)
                )
                pages += table.npages
        return pages

    # ------------------------------------------------------------- reporting
    def key_count(self) -> int:
        """Distinct keys stored across the memtable and all levels."""
        keys = set(self.memtable)
        for tables in self.levels:
            for table in tables:
                keys.update(table.keys)
        return len(keys)

    def table_count(self) -> int:
        """Number of live SSTables."""
        return sum(len(tables) for tables in self.levels)


@dataclass
class DbBenchResult:
    """Outcome of one db_bench phase."""

    phase: str
    operations: int
    elapsed_us: float
    lsm_stats: LSMStats

    @property
    def ops_per_second(self) -> float:
        """Operations per simulated second."""
        if self.elapsed_us <= 0:
            return 0.0
        return self.operations / (self.elapsed_us / 1e6)


class DbBench:
    """The four db_bench phases used in the paper's RocksDB evaluation."""

    def __init__(self, lsm: MiniLSM, *, num_keys: int, seed: int = 5) -> None:
        if num_keys <= 0:
            raise ConfigurationError("num_keys must be positive")
        self.lsm = lsm
        self.num_keys = num_keys
        self._rng = random.Random(seed)

    def _timed(self, phase: str, operations: int, body) -> DbBenchResult:
        start = self.lsm.ssd.now_us
        body()
        elapsed = self.lsm.ssd.now_us - start
        return DbBenchResult(
            phase=phase, operations=operations, elapsed_us=elapsed, lsm_stats=self.lsm.stats
        )

    def fillseq(self) -> DbBenchResult:
        """Insert every key in ascending order."""
        return self._timed(
            "fillseq", self.num_keys, lambda: [self.lsm.put(key) for key in range(self.num_keys)]
        )

    def overwrite(self, operations: int | None = None) -> DbBenchResult:
        """Overwrite random keys (drives compaction)."""
        count = operations or self.num_keys
        return self._timed(
            "overwrite",
            count,
            lambda: [self.lsm.put(self._rng.randrange(self.num_keys)) for _ in range(count)],
        )

    def readrandom(self, operations: int) -> DbBenchResult:
        """Random point lookups."""
        return self._timed(
            "readrandom",
            operations,
            lambda: [self.lsm.get(self._rng.randrange(self.num_keys)) for _ in range(operations)],
        )

    def readseq(self) -> DbBenchResult:
        """Sequential scan of the whole store."""
        return self._timed("readseq", self.lsm.key_count(), self.lsm.scan_all)
