"""Workload generators: fio, Filebench, RocksDB (mini-LSM), traces and synthetics."""

from repro.workloads.filebench import FILEBENCH_PRESETS, FilebenchConfig, FilebenchWorkload
from repro.workloads.fio import FioJob, FioPattern, warmup_writes
from repro.workloads.rocksdb import DbBench, ExtentAllocator, MiniLSM, SSTable
from repro.workloads.spec import WORKLOAD_KINDS, WorkloadPlan, build_workload
from repro.workloads.synthetic import (
    hotspot_stream,
    mixed_stream,
    sequential_stream,
    strided_reads,
    zipf_reads,
)
from repro.workloads.traces import (
    TRACE_FORMATS,
    TRACE_PRESETS,
    RecordStream,
    TraceCharacteristics,
    TraceCursor,
    TraceRecord,
    characterize,
    iter_spc,
    iter_systor_csv,
    iter_trace_records,
    open_trace,
    parse_spc,
    parse_systor_csv,
    synthesize_systor,
    synthesize_websearch,
    trace_format_for,
    trace_to_requests,
)
from repro.workloads.zipf import HotspotGenerator, ZipfGenerator

__all__ = [
    "FioJob",
    "FioPattern",
    "warmup_writes",
    "FilebenchWorkload",
    "FilebenchConfig",
    "FILEBENCH_PRESETS",
    "MiniLSM",
    "DbBench",
    "SSTable",
    "ExtentAllocator",
    "TraceRecord",
    "TraceCharacteristics",
    "TraceCursor",
    "RecordStream",
    "TRACE_FORMATS",
    "trace_format_for",
    "open_trace",
    "iter_spc",
    "iter_systor_csv",
    "iter_trace_records",
    "parse_spc",
    "parse_systor_csv",
    "synthesize_websearch",
    "synthesize_systor",
    "trace_to_requests",
    "characterize",
    "TRACE_PRESETS",
    "ZipfGenerator",
    "HotspotGenerator",
    "WORKLOAD_KINDS",
    "WorkloadPlan",
    "build_workload",
    "mixed_stream",
    "sequential_stream",
    "strided_reads",
    "zipf_reads",
    "hotspot_stream",
]
