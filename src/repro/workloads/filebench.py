"""Filebench-style file-server workloads (Table I of the paper).

Filebench drives a real file system; the FTL underneath only sees the block
requests the file system emits.  This module models that block-level view: a
*file set* is laid out over the logical address space (files become extents of
consecutive LPNs, separated by small gaps to mimic allocation fragmentation),
and each personality issues the operation mix the paper describes:

================  =========================  ==========  ========
workload          file set                   behaviour   threads
================  =========================  ==========  ========
``fileserver``    225,000 files x 128 KB     write heavy   50
``webserver``     825,000 files x 16 KB      read heavy    64
``varmail``       475,000 files x 16 KB      read:write=1  64
================  =========================  ==========  ========

File counts are scaled down proportionally to the simulated device size; the
file sizes, operation mixes and thread counts are preserved.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator

from repro.nand.errors import ConfigurationError
from repro.nand.geometry import SSDGeometry
from repro.ssd.request import HostRequest, OpType
from repro.workloads.zipf import ZipfGenerator

__all__ = ["FilebenchConfig", "FilebenchWorkload", "FILEBENCH_PRESETS"]


@dataclass(frozen=True)
class FilebenchConfig:
    """Configuration of one Filebench personality (mirrors Table I)."""

    name: str
    file_count: int
    file_size_kb: int
    read_fraction: float
    append_fraction: float
    whole_file_fraction: float
    threads: int
    zipf_theta: float = 0.9

    @property
    def file_size_bytes(self) -> int:
        """File size in bytes."""
        return self.file_size_kb * 1024


#: The three personalities used in the paper (Figure 7 / Figure 20).
FILEBENCH_PRESETS: dict[str, FilebenchConfig] = {
    "fileserver": FilebenchConfig(
        name="fileserver",
        file_count=225_000,
        file_size_kb=128,
        read_fraction=0.33,
        append_fraction=0.5,
        whole_file_fraction=0.5,
        threads=50,
    ),
    "webserver": FilebenchConfig(
        name="webserver",
        file_count=825_000,
        file_size_kb=16,
        read_fraction=0.92,
        append_fraction=0.08,
        whole_file_fraction=0.9,
        threads=64,
    ),
    "varmail": FilebenchConfig(
        name="varmail",
        file_count=475_000,
        file_size_kb=16,
        read_fraction=0.5,
        append_fraction=0.5,
        whole_file_fraction=0.5,
        threads=64,
    ),
}


@dataclass(frozen=True)
class _FileExtent:
    """Placement of one file on the logical address space."""

    start_lpn: int
    npages: int


class FilebenchWorkload:
    """Generate the block-level request stream of one Filebench personality."""

    def __init__(
        self,
        config: FilebenchConfig,
        geometry: SSDGeometry,
        *,
        capacity_fraction: float = 0.8,
        seed: int = 11,
    ) -> None:
        self.config = config
        self.geometry = geometry
        self.seed = seed
        self._rng = random.Random(seed)
        self._files = self._layout_files(capacity_fraction)
        if not self._files:
            raise ConfigurationError("device too small to hold even one file")
        self._popularity = ZipfGenerator(len(self._files), theta=config.zipf_theta, seed=seed)

    @classmethod
    def preset(
        cls, name: str, geometry: SSDGeometry, *, seed: int = 11
    ) -> "FilebenchWorkload":
        """Build one of the paper's three personalities by name."""
        try:
            config = FILEBENCH_PRESETS[name]
        except KeyError as exc:
            raise ConfigurationError(
                f"unknown filebench personality {name!r}; choose from {sorted(FILEBENCH_PRESETS)}"
            ) from exc
        return cls(config, geometry, seed=seed)

    # ---------------------------------------------------------------- layout
    def _layout_files(self, capacity_fraction: float) -> list[_FileExtent]:
        page_size = self.geometry.page_size
        pages_per_file = max(1, self.config.file_size_bytes // page_size)
        budget_pages = int(self.geometry.num_logical_pages * capacity_fraction)
        max_files = budget_pages // (pages_per_file + 1)
        file_count = min(self.config.file_count, max_files)
        files: list[_FileExtent] = []
        if file_count <= 0:
            return files
        cursor = 0
        for _ in range(file_count):
            files.append(_FileExtent(start_lpn=cursor, npages=pages_per_file))
            # A one-page gap between files mimics metadata blocks and keeps
            # whole-file reads from being perfectly device-sequential.
            cursor += pages_per_file + 1
        return files

    @property
    def file_count(self) -> int:
        """Number of files actually laid out on this device."""
        return len(self._files)

    @property
    def threads(self) -> int:
        """The personality's thread count (Table I)."""
        return self.config.threads

    # ------------------------------------------------------------ generation
    def requests(self, num_operations: int) -> Iterator[HostRequest]:
        """Yield the block requests of ``num_operations`` file operations."""
        for index in range(num_operations):
            file = self._files[self._popularity.sample()]
            if self._rng.random() < self.config.read_fraction:
                yield from self._read_file(file, index)
            else:
                yield from self._write_file(file, index)

    def preconditioning(self) -> Iterator[HostRequest]:
        """Write every file once (the 'create fileset' phase of Filebench)."""
        for index, file in enumerate(self._files):
            yield HostRequest(
                op=OpType.WRITE, lpn=file.start_lpn, npages=file.npages, stream_id=index
            )

    def _read_file(self, file: _FileExtent, index: int) -> Iterator[HostRequest]:
        if self._rng.random() < self.config.whole_file_fraction or file.npages == 1:
            yield HostRequest(op=OpType.READ, lpn=file.start_lpn, npages=file.npages, stream_id=index)
        else:
            offset = self._rng.randrange(file.npages)
            length = min(file.npages - offset, max(1, file.npages // 4))
            yield HostRequest(
                op=OpType.READ, lpn=file.start_lpn + offset, npages=length, stream_id=index
            )

    def _write_file(self, file: _FileExtent, index: int) -> Iterator[HostRequest]:
        if self._rng.random() < self.config.append_fraction or file.npages == 1:
            # Append / log-style write of the file tail.
            length = max(1, file.npages // 4)
            offset = file.npages - length
        else:
            # Whole-file rewrite.
            length = file.npages
            offset = 0
        yield HostRequest(
            op=OpType.WRITE, lpn=file.start_lpn + offset, npages=length, stream_id=index
        )

    def describe(self) -> str:
        """Human-readable description of the scaled workload."""
        return (
            f"filebench {self.config.name}: {self.file_count} files x "
            f"{self.config.file_size_kb} KB, read fraction {self.config.read_fraction:.0%}, "
            f"{self.config.threads} threads"
        )
