"""FIO-like synthetic workload generator.

The paper drives its micro-benchmarks with ``fio`` using the psync engine,
4 KB I/O and up to 64 threads (Section IV-B).  :class:`FioJob` reproduces the
four access patterns (sequential/random x read/write) as streams of
:class:`~repro.ssd.request.HostRequest`; the device's closed-loop ``run``
method supplies the multi-threading.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Iterator

from repro.nand.geometry import SSDGeometry
from repro.ssd.request import HostRequest, OpType

__all__ = ["FioPattern", "FioJob"]


class FioPattern(enum.Enum):
    """The four fio access patterns used throughout the evaluation."""

    SEQ_READ = "seqread"
    RAND_READ = "randread"
    SEQ_WRITE = "seqwrite"
    RAND_WRITE = "randwrite"

    @property
    def is_read(self) -> bool:
        """True for the two read patterns."""
        return self in (FioPattern.SEQ_READ, FioPattern.RAND_READ)

    @property
    def is_sequential(self) -> bool:
        """True for the two sequential patterns."""
        return self in (FioPattern.SEQ_READ, FioPattern.SEQ_WRITE)


@dataclass(frozen=True)
class FioJob:
    """One fio job description.

    Attributes
    ----------
    pattern:
        Access pattern.
    num_requests:
        Number of host requests to generate.
    io_pages:
        Request size in pages (the paper uses 1 page = 4 KB for measurements
        and 128 pages = 512 KB for LeaFTL's warm-up writes).
    seed:
        RNG seed for the random patterns.
    span_fraction:
        Fraction of the logical space the job touches (1.0 = whole device).
    """

    pattern: FioPattern
    num_requests: int
    io_pages: int = 1
    seed: int = 42
    span_fraction: float = 1.0

    # ------------------------------------------------------------- factories
    @classmethod
    def seqread(cls, num_requests: int, *, io_pages: int = 1, seed: int = 42) -> "FioJob":
        """Sequential read job."""
        return cls(FioPattern.SEQ_READ, num_requests, io_pages=io_pages, seed=seed)

    @classmethod
    def randread(cls, num_requests: int, *, io_pages: int = 1, seed: int = 42) -> "FioJob":
        """Random read job."""
        return cls(FioPattern.RAND_READ, num_requests, io_pages=io_pages, seed=seed)

    @classmethod
    def seqwrite(cls, num_requests: int, *, io_pages: int = 1, seed: int = 42) -> "FioJob":
        """Sequential write job."""
        return cls(FioPattern.SEQ_WRITE, num_requests, io_pages=io_pages, seed=seed)

    @classmethod
    def randwrite(cls, num_requests: int, *, io_pages: int = 1, seed: int = 42) -> "FioJob":
        """Random write job."""
        return cls(FioPattern.RAND_WRITE, num_requests, io_pages=io_pages, seed=seed)

    @classmethod
    def from_name(cls, name: str, num_requests: int, **kwargs) -> "FioJob":
        """Build a job from a pattern name (``seqread``/``randread``/...)."""
        return cls(FioPattern(name), num_requests, **kwargs)

    # ------------------------------------------------------------ generation
    def requests(self, geometry: SSDGeometry) -> Iterator[HostRequest]:
        """Yield the job's host requests sized to a device geometry."""
        span = max(self.io_pages, int(geometry.num_logical_pages * self.span_fraction))
        span = min(span, geometry.num_logical_pages)
        op = OpType.READ if self.pattern.is_read else OpType.WRITE
        if self.pattern.is_sequential:
            yield from self._sequential(op, span)
        else:
            yield from self._random(op, span)

    def _sequential(self, op: OpType, span: int) -> Iterator[HostRequest]:
        lpn = 0
        for index in range(self.num_requests):
            if lpn + self.io_pages > span:
                lpn = 0
            yield HostRequest(op=op, lpn=lpn, npages=self.io_pages, stream_id=index)
            lpn += self.io_pages

    def _random(self, op: OpType, span: int) -> Iterator[HostRequest]:
        rng = random.Random(self.seed)
        limit = max(1, span - self.io_pages + 1)
        for index in range(self.num_requests):
            lpn = rng.randrange(limit)
            yield HostRequest(op=op, lpn=lpn, npages=self.io_pages, stream_id=index)

    # ------------------------------------------------------------- reporting
    def describe(self) -> str:
        """Human-readable one-line description of the job."""
        return (
            f"fio {self.pattern.value}: {self.num_requests} requests x "
            f"{self.io_pages} page(s), span {self.span_fraction:.0%}"
        )


def warmup_writes(
    geometry: SSDGeometry,
    *,
    overwrite_factor: float = 1.0,
    io_pages: int = 128,
    random_fraction: float = 0.5,
    seed: int = 7,
) -> Iterator[HostRequest]:
    """Steady-state preconditioning stream (Section IV-B warm-up).

    The paper warms the SSD up by writing it over several times with a mix of
    sequential and random writes (512 KB requests so LeaFTL's learned index can
    be built).  ``overwrite_factor`` expresses how many times the logical space
    is written in addition to the initial sequential fill performed by
    :meth:`repro.ssd.device.SSD.fill_sequential`.
    """
    rng = random.Random(seed)
    total_pages = int(geometry.num_logical_pages * overwrite_factor)
    pages_emitted = 0
    sequential_cursor = 0
    span = geometry.num_logical_pages
    while pages_emitted < total_pages:
        npages = min(io_pages, span)
        if rng.random() < random_fraction:
            lpn = rng.randrange(max(1, span - npages + 1))
        else:
            if sequential_cursor + npages > span:
                sequential_cursor = 0
            lpn = sequential_cursor
            sequential_cursor += npages
        yield HostRequest(op=OpType.WRITE, lpn=lpn, npages=npages)
        pages_emitted += npages


__all__.append("warmup_writes")
