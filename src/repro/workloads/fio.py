"""FIO-like synthetic workload generator.

The paper drives its micro-benchmarks with ``fio`` using the psync engine,
4 KB I/O and up to 64 threads (Section IV-B).  :class:`FioJob` reproduces the
four access patterns (sequential/random x read/write) as streams of
:class:`~repro.ssd.request.HostRequest`; the device's closed-loop ``run``
method supplies the multi-threading.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.nand.geometry import SSDGeometry
from repro.ssd.request import OP_READ_CODE, OP_WRITE_CODE, HostRequest, OpType, RequestBatch

__all__ = ["FioPattern", "FioJob"]


class FioPattern(enum.Enum):
    """The four fio access patterns used throughout the evaluation."""

    SEQ_READ = "seqread"
    RAND_READ = "randread"
    SEQ_WRITE = "seqwrite"
    RAND_WRITE = "randwrite"

    @property
    def is_read(self) -> bool:
        """True for the two read patterns."""
        return self in (FioPattern.SEQ_READ, FioPattern.RAND_READ)

    @property
    def is_sequential(self) -> bool:
        """True for the two sequential patterns."""
        return self in (FioPattern.SEQ_READ, FioPattern.SEQ_WRITE)


@dataclass(frozen=True)
class FioJob:
    """One fio job description.

    Attributes
    ----------
    pattern:
        Access pattern.
    num_requests:
        Number of host requests to generate.
    io_pages:
        Request size in pages (the paper uses 1 page = 4 KB for measurements
        and 128 pages = 512 KB for LeaFTL's warm-up writes).
    seed:
        RNG seed for the random patterns.
    span_fraction:
        Fraction of the logical space the job touches (1.0 = whole device).
    """

    pattern: FioPattern
    num_requests: int
    io_pages: int = 1
    seed: int = 42
    span_fraction: float = 1.0

    # ------------------------------------------------------------- factories
    @classmethod
    def seqread(cls, num_requests: int, *, io_pages: int = 1, seed: int = 42) -> "FioJob":
        """Sequential read job."""
        return cls(FioPattern.SEQ_READ, num_requests, io_pages=io_pages, seed=seed)

    @classmethod
    def randread(cls, num_requests: int, *, io_pages: int = 1, seed: int = 42) -> "FioJob":
        """Random read job."""
        return cls(FioPattern.RAND_READ, num_requests, io_pages=io_pages, seed=seed)

    @classmethod
    def seqwrite(cls, num_requests: int, *, io_pages: int = 1, seed: int = 42) -> "FioJob":
        """Sequential write job."""
        return cls(FioPattern.SEQ_WRITE, num_requests, io_pages=io_pages, seed=seed)

    @classmethod
    def randwrite(cls, num_requests: int, *, io_pages: int = 1, seed: int = 42) -> "FioJob":
        """Random write job."""
        return cls(FioPattern.RAND_WRITE, num_requests, io_pages=io_pages, seed=seed)

    @classmethod
    def from_name(cls, name: str, num_requests: int, **kwargs) -> "FioJob":
        """Build a job from a pattern name (``seqread``/``randread``/...)."""
        return cls(FioPattern(name), num_requests, **kwargs)

    # ------------------------------------------------------------ generation
    def requests(self, geometry: SSDGeometry) -> Iterator[HostRequest]:
        """Yield the job's host requests sized to a device geometry."""
        op = OpType.READ if self.pattern.is_read else OpType.WRITE
        npages = self.io_pages
        for index, lpn in enumerate(self._lpn_column(geometry).tolist()):
            yield HostRequest(op=op, lpn=lpn, npages=npages, stream_id=index)

    def request_batch(self, geometry: SSDGeometry) -> RequestBatch:
        """The job's request stream as one columnar :class:`RequestBatch`.

        Request ``i`` is element-wise identical to the ``i``-th yield of
        :meth:`requests` (same LPN column, drawn from the same RNG state);
        passing the batch to ``SSD.run(..., batch=N)`` lets the device slice
        its columns directly instead of re-deriving them from request objects.
        """
        lpns = self._lpn_column(geometry)
        n = lpns.shape[0]
        op_code = OP_READ_CODE if self.pattern.is_read else OP_WRITE_CODE
        return RequestBatch(
            np.full(n, op_code, dtype=np.int8),
            lpns,
            np.full(n, self.io_pages, dtype=np.int64),
        )

    def _lpn_column(self, geometry: SSDGeometry) -> "np.ndarray":
        """The job's LPN column (shared by the object and columnar streams)."""
        span = max(self.io_pages, int(geometry.num_logical_pages * self.span_fraction))
        span = min(span, geometry.num_logical_pages)
        if self.pattern.is_sequential:
            # The cursor advances by io_pages and wraps to 0 whenever the next
            # request would cross span, i.e. position k is (k * io_pages)
            # modulo the largest io_pages multiple that fits.
            wrap = max(self.io_pages, (span // self.io_pages) * self.io_pages)
            return (np.arange(self.num_requests, dtype=np.int64) * self.io_pages) % wrap
        limit = max(1, span - self.io_pages + 1)
        rng = np.random.default_rng(self.seed)
        return rng.integers(0, limit, size=self.num_requests)

    # ------------------------------------------------------------- reporting
    def describe(self) -> str:
        """Human-readable one-line description of the job."""
        return (
            f"fio {self.pattern.value}: {self.num_requests} requests x "
            f"{self.io_pages} page(s), span {self.span_fraction:.0%}"
        )


def warmup_writes(
    geometry: SSDGeometry,
    *,
    overwrite_factor: float = 1.0,
    io_pages: int = 128,
    random_fraction: float = 0.5,
    seed: int = 7,
) -> Iterator[HostRequest]:
    """Steady-state preconditioning stream (Section IV-B warm-up).

    The paper warms the SSD up by writing it over several times with a mix of
    sequential and random writes (512 KB requests so LeaFTL's learned index can
    be built).  ``overwrite_factor`` expresses how many times the logical space
    is written in addition to the initial sequential fill performed by
    :meth:`repro.ssd.device.SSD.fill_sequential`.

    The whole stream is drawn as NumPy arrays up front (every request has the
    same page count, so the request count is known in advance); the stream is
    deterministic per seed.
    """
    span = geometry.num_logical_pages
    npages = min(io_pages, span)
    total_pages = int(span * overwrite_factor)
    num_requests = -(-total_pages // npages) if total_pages > 0 else 0
    if num_requests == 0:
        return
    rng = np.random.default_rng(seed)
    is_random = rng.random(num_requests) < random_fraction
    lpns = np.empty(num_requests, dtype=np.int64)
    num_random = int(is_random.sum())
    lpns[is_random] = rng.integers(0, max(1, span - npages + 1), size=num_random)
    # Sequential picks advance a shared cursor by npages, wrapping to 0 at the
    # largest npages multiple that fits: the k-th sequential pick starts at
    # (k * npages) mod wrap.
    sequential = ~is_random
    wrap = max(npages, (span // npages) * npages)
    sequential_index = np.cumsum(sequential) - 1
    lpns[sequential] = (sequential_index[sequential] * npages) % wrap
    for lpn in lpns.tolist():
        yield HostRequest(op=OpType.WRITE, lpn=lpn, npages=npages)


__all__.append("warmup_writes")
