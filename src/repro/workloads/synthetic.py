"""Miscellaneous synthetic request streams used by tests and examples.

The fio/Filebench/RocksDB/trace generators cover the paper's workloads; this
module adds small composable building blocks that are convenient when writing
tests, examples and ablation studies: mixed read/write streams, strided
patterns and locality-controlled streams.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.nand.geometry import SSDGeometry
from repro.ssd.request import HostRequest, OpType
from repro.workloads.zipf import HotspotGenerator, ZipfGenerator

__all__ = [
    "mixed_stream",
    "strided_reads",
    "zipf_reads",
    "hotspot_stream",
    "sequential_stream",
]


def sequential_stream(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    op: OpType = OpType.WRITE,
    io_pages: int = 1,
    start_lpn: int = 0,
) -> Iterator[HostRequest]:
    """Plain sequential stream wrapping around the logical space."""
    span = geometry.num_logical_pages
    lpn = start_lpn % span
    for _ in range(num_requests):
        if lpn + io_pages > span:
            lpn = 0
        yield HostRequest(op=op, lpn=lpn, npages=io_pages)
        lpn += io_pages


def mixed_stream(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    read_fraction: float = 0.5,
    io_pages: int = 1,
    seed: int = 17,
) -> Iterator[HostRequest]:
    """Uniformly random stream with a configurable read/write mix."""
    rng = random.Random(seed)
    limit = max(1, geometry.num_logical_pages - io_pages + 1)
    for _ in range(num_requests):
        op = OpType.READ if rng.random() < read_fraction else OpType.WRITE
        yield HostRequest(op=op, lpn=rng.randrange(limit), npages=io_pages)


def strided_reads(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    stride_pages: int,
    io_pages: int = 1,
) -> Iterator[HostRequest]:
    """Fixed-stride read stream (defeats prefetchers without being random)."""
    span = geometry.num_logical_pages
    lpn = 0
    for _ in range(num_requests):
        yield HostRequest(op=OpType.READ, lpn=lpn, npages=io_pages)
        lpn = (lpn + stride_pages) % max(1, span - io_pages)


def zipf_reads(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    theta: float = 0.99,
    io_pages: int = 1,
    seed: int = 23,
) -> Iterator[HostRequest]:
    """Zipf-skewed random reads (popularity locality without spatial locality)."""
    generator = ZipfGenerator(
        max(1, geometry.num_logical_pages - io_pages + 1), theta=theta, seed=seed
    )
    for _ in range(num_requests):
        yield HostRequest(op=OpType.READ, lpn=generator.sample(), npages=io_pages)


def hotspot_stream(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    read_fraction: float = 0.7,
    hot_fraction: float = 0.2,
    hot_probability: float = 0.8,
    io_pages: int = 1,
    seed: int = 29,
) -> Iterator[HostRequest]:
    """Hot/cold mixed stream: a small region absorbs most of the traffic."""
    rng = random.Random(seed)
    generator = HotspotGenerator(
        max(1, geometry.num_logical_pages - io_pages + 1),
        hot_fraction=hot_fraction,
        hot_probability=hot_probability,
        seed=seed,
    )
    for _ in range(num_requests):
        op = OpType.READ if rng.random() < read_fraction else OpType.WRITE
        yield HostRequest(op=op, lpn=generator.sample(), npages=io_pages)
