"""Miscellaneous synthetic request streams used by tests and examples.

The fio/Filebench/RocksDB/trace generators cover the paper's workloads; this
module adds small composable building blocks that are convenient when writing
tests, examples and ablation studies: mixed read/write streams, strided
patterns and locality-controlled streams.

Each stream also has a ``*_batch`` counterpart returning a columnar
:class:`~repro.ssd.request.RequestBatch` (op/lpn/npages columns) for the
batched execution kernel.  The batch builders pack the *same* generator the
iterator form yields from, so the two streams are bit-identical per seed by
construction — sampling is inherently sequential for these RNG-driven
patterns (each draw advances shared generator state), and generation is not
the hot path the batched kernel optimizes.
"""

from __future__ import annotations

import random
from typing import Iterator

from repro.nand.geometry import SSDGeometry
from repro.ssd.request import HostRequest, OpType, RequestBatch
from repro.workloads.zipf import HotspotGenerator, ZipfGenerator

__all__ = [
    "mixed_stream",
    "mixed_batch",
    "strided_reads",
    "zipf_reads",
    "zipf_read_batch",
    "hotspot_stream",
    "hotspot_batch",
    "sequential_stream",
]


def sequential_stream(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    op: OpType = OpType.WRITE,
    io_pages: int = 1,
    start_lpn: int = 0,
) -> Iterator[HostRequest]:
    """Plain sequential stream wrapping around the logical space."""
    span = geometry.num_logical_pages
    lpn = start_lpn % span
    for _ in range(num_requests):
        if lpn + io_pages > span:
            lpn = 0
        yield HostRequest(op=op, lpn=lpn, npages=io_pages)
        lpn += io_pages


def mixed_stream(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    read_fraction: float = 0.5,
    io_pages: int = 1,
    seed: int = 17,
) -> Iterator[HostRequest]:
    """Uniformly random stream with a configurable read/write mix."""
    rng = random.Random(seed)
    limit = max(1, geometry.num_logical_pages - io_pages + 1)
    for _ in range(num_requests):
        op = OpType.READ if rng.random() < read_fraction else OpType.WRITE
        yield HostRequest(op=op, lpn=rng.randrange(limit), npages=io_pages)


def mixed_batch(geometry: SSDGeometry, **kwargs) -> RequestBatch:
    """:func:`mixed_stream` as one columnar batch (bit-identical stream)."""
    return RequestBatch.from_requests(mixed_stream(geometry, **kwargs))


def strided_reads(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    stride_pages: int,
    io_pages: int = 1,
) -> Iterator[HostRequest]:
    """Fixed-stride read stream (defeats prefetchers without being random)."""
    span = geometry.num_logical_pages
    lpn = 0
    for _ in range(num_requests):
        yield HostRequest(op=OpType.READ, lpn=lpn, npages=io_pages)
        lpn = (lpn + stride_pages) % max(1, span - io_pages)


def zipf_reads(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    theta: float = 0.99,
    io_pages: int = 1,
    seed: int = 23,
) -> Iterator[HostRequest]:
    """Zipf-skewed random reads (popularity locality without spatial locality)."""
    generator = ZipfGenerator(
        max(1, geometry.num_logical_pages - io_pages + 1), theta=theta, seed=seed
    )
    for _ in range(num_requests):
        yield HostRequest(op=OpType.READ, lpn=generator.sample(), npages=io_pages)


def zipf_read_batch(geometry: SSDGeometry, **kwargs) -> RequestBatch:
    """:func:`zipf_reads` as one columnar batch (bit-identical stream)."""
    return RequestBatch.from_requests(zipf_reads(geometry, **kwargs))


def hotspot_stream(
    geometry: SSDGeometry,
    *,
    num_requests: int,
    read_fraction: float = 0.7,
    hot_fraction: float = 0.2,
    hot_probability: float = 0.8,
    io_pages: int = 1,
    seed: int = 29,
) -> Iterator[HostRequest]:
    """Hot/cold mixed stream: a small region absorbs most of the traffic."""
    rng = random.Random(seed)
    generator = HotspotGenerator(
        max(1, geometry.num_logical_pages - io_pages + 1),
        hot_fraction=hot_fraction,
        hot_probability=hot_probability,
        seed=seed,
    )
    for _ in range(num_requests):
        op = OpType.READ if rng.random() < read_fraction else OpType.WRITE
        yield HostRequest(op=op, lpn=generator.sample(), npages=io_pages)


def hotspot_batch(geometry: SSDGeometry, **kwargs) -> RequestBatch:
    """:func:`hotspot_stream` as one columnar batch (bit-identical stream)."""
    return RequestBatch.from_requests(hotspot_stream(geometry, **kwargs))
