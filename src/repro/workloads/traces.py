"""Block-trace ingestion and synthetic stand-ins for the paper's four traces.

The paper replays three UMass WebSearch traces (SPC format) and one Systor '17
enterprise VDI trace (CSV format).  Those files cannot be shipped here, so this
module provides both:

* **parsers** for the two on-disk formats (:func:`parse_spc`, :func:`parse_systor_csv`),
  so the real traces can be dropped in if available; and
* **synthetic generators** whose request streams match the characteristics the
  paper reports in Table II (I/O count, mean request size, read ratio) plus a
  strong hot-range locality, which is the property the tail-latency and energy
  experiments depend on.

Every record is expressed as a :class:`TraceRecord` in byte units and converted
to page-granular :class:`~repro.ssd.request.HostRequest` objects against a
concrete device geometry (scaling LBAs into the logical space, as the paper
does when it "scales up" the old WebSearch traces to modern SSD sizes).
"""

from __future__ import annotations

import gzip
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, Iterable, Iterator

import numpy as np

from repro.nand.errors import TraceFormatError
from repro.nand.geometry import SSDGeometry
from repro.ssd.request import HostRequest, OpType
from repro.workloads.zipf import HotspotGenerator

__all__ = [
    "TraceRecord",
    "TraceCharacteristics",
    "TraceCursor",
    "RecordStream",
    "TRACE_FORMATS",
    "trace_format_for",
    "open_trace",
    "iter_spc",
    "iter_systor_csv",
    "iter_trace_records",
    "parse_spc",
    "parse_systor_csv",
    "synthesize_websearch",
    "synthesize_systor",
    "trace_to_requests",
    "characterize",
    "TRACE_PRESETS",
]


@dataclass(frozen=True)
class TraceRecord:
    """One block-level trace record (byte-addressed)."""

    timestamp_s: float
    offset_bytes: int
    size_bytes: int
    is_read: bool
    stream_id: int = 0


@dataclass(frozen=True)
class TraceCharacteristics:
    """Aggregate statistics of a trace (the columns of Table II)."""

    name: str
    num_ios: int
    average_io_kb: float
    read_ratio: float

    def as_row(self) -> dict[str, float | str | int]:
        """Row representation used by the Table II harness."""
        return {
            "trace": self.name,
            "num_ios": self.num_ios,
            "avg_io_kb": round(self.average_io_kb, 2),
            "read_ratio": round(self.read_ratio, 4),
        }


# --------------------------------------------------------------------- parsing
#: Longest slice of an offending line quoted in a :class:`TraceFormatError`.
_ERROR_LINE_LIMIT = 120


def _offending(line: str) -> str:
    """The offending line text, truncated, as quoted in parse errors."""
    if len(line) > _ERROR_LINE_LIMIT:
        return repr(line[:_ERROR_LINE_LIMIT]) + "..."
    return repr(line)


def _parse_spc_line(line: str, path: "str | Path", line_no: int) -> TraceRecord | None:
    """Parse one SPC line (``ASU,LBA,size,opcode,timestamp``); ``None`` skips it.

    The LBA unit is a 512-byte sector (the UMass WebSearch convention).
    """
    if not line or line.startswith("#"):
        return None
    parts = line.split(",")
    if len(parts) < 5:
        raise TraceFormatError(
            f"{path}:{line_no}: expected 5 SPC fields, got {len(parts)}: {_offending(line)}"
        )
    try:
        asu = int(parts[0])
        lba = int(parts[1])
        size = int(parts[2])
        opcode = parts[3].strip().lower()
        timestamp = float(parts[4])
    except ValueError as exc:
        raise TraceFormatError(
            f"{path}:{line_no}: malformed SPC record: {_offending(line)}"
        ) from exc
    return TraceRecord(
        timestamp_s=timestamp,
        offset_bytes=lba * 512,
        size_bytes=size,
        is_read=opcode.startswith("r"),
        stream_id=asu,
    )


def _parse_systor_line(line: str, path: "str | Path", line_no: int) -> TraceRecord | None:
    """Parse one Systor '17 CSV line (``timestamp,response,iotype,lun,offset,size``)."""
    if not line or line.lower().startswith("timestamp"):
        return None
    parts = line.split(",")
    if len(parts) < 6:
        raise TraceFormatError(
            f"{path}:{line_no}: expected 6 Systor fields, got {len(parts)}: {_offending(line)}"
        )
    try:
        timestamp = float(parts[0])
        iotype = parts[2].strip().upper()
        lun = int(parts[3]) if parts[3].strip() else 0
        offset = int(parts[4])
        size = int(parts[5])
    except ValueError as exc:
        raise TraceFormatError(
            f"{path}:{line_no}: malformed Systor record: {_offending(line)}"
        ) from exc
    return TraceRecord(
        timestamp_s=timestamp,
        offset_bytes=offset,
        size_bytes=size,
        is_read=iotype in ("R", "READ"),
        stream_id=lun,
    )


#: Per-line parsers by format name.  A parser takes ``(line, path, line_no)``
#: and returns a :class:`TraceRecord` or ``None`` for skippable lines (blanks,
#: comments, headers); malformed lines raise :class:`TraceFormatError` naming
#: ``path:line_no`` and quoting the offending text (truncated).
TRACE_FORMATS: dict[str, Callable[[str, "str | Path", int], TraceRecord | None]] = {
    "spc": _parse_spc_line,
    "systor": _parse_systor_line,
}


def trace_format_for(path: str | Path) -> str:
    """Guess the trace format from a file name (``.spc`` vs ``.csv``, ``.gz``-aware)."""
    name = Path(path).name.lower()
    if name.endswith(".gz"):
        name = name[: -len(".gz")]
    if name.endswith(".spc"):
        return "spc"
    if name.endswith(".csv"):
        return "systor"
    raise TraceFormatError(
        f"cannot infer the trace format of {path!r} (expected a .spc or .csv "
        f"suffix, optionally .gz-compressed); pass the format explicitly"
    )


def open_trace(path: str | Path) -> BinaryIO:
    """Open a trace file for binary streaming, transparently decompressing ``.gz``.

    The returned handle reads *uncompressed* bytes either way, so byte offsets
    (``TraceCursor.byte_offset``) always count uncompressed trace text and a
    cursor taken on a compressed file stays valid.  Seeking forward in a
    ``.gz`` file decompresses through the skipped span — still a single pass,
    never a full re-parse.
    """
    path = Path(path)
    if path.name.lower().endswith(".gz"):
        return gzip.open(path, "rb")
    return open(path, "rb")


@dataclass(frozen=True)
class TraceCursor:
    """Resumable position inside a trace file.

    ``byte_offset`` counts *uncompressed* bytes consumed (the position of the
    next unread line), ``line_no`` the lines consumed, ``record_index`` the
    records yielded and ``skipped_lines`` the malformed lines tolerated so far
    (``max_errors`` mode).  A cursor captured from one :class:`RecordStream`
    and handed to a new one resumes the record sequence exactly.
    """

    byte_offset: int = 0
    line_no: int = 0
    record_index: int = 0
    skipped_lines: int = 0

    def as_dict(self) -> dict[str, int]:
        """JSON-serializable form (stored inside replay checkpoints)."""
        return {
            "byte_offset": self.byte_offset,
            "line_no": self.line_no,
            "record_index": self.record_index,
            "skipped_lines": self.skipped_lines,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "TraceCursor":
        """Inverse of :meth:`as_dict`."""
        return cls(
            byte_offset=int(payload["byte_offset"]),
            line_no=int(payload["line_no"]),
            record_index=int(payload["record_index"]),
            skipped_lines=int(payload["skipped_lines"]),
        )


class RecordStream:
    """Streaming :class:`TraceRecord` iterator with a resumable cursor.

    Reads one line at a time (never materializing the trace), parses it with
    the named format's line parser and tracks an exact :class:`TraceCursor`
    after every yielded record.  ``limit`` counts records from the *start of
    the file* (cursor included), matching ``parse_*``'s limit semantics; with
    ``max_errors > 0`` up to that many malformed lines are counted and skipped
    instead of aborting the stream — the first line beyond the budget raises.
    """

    def __init__(
        self,
        path: str | Path,
        format: str,
        *,
        limit: int | None = None,
        max_errors: int = 0,
        cursor: TraceCursor | None = None,
    ) -> None:
        try:
            self._parse_line = TRACE_FORMATS[format]
        except KeyError:
            raise TraceFormatError(
                f"unknown trace format {format!r}; choose one of {sorted(TRACE_FORMATS)}"
            ) from None
        if max_errors < 0:
            raise TraceFormatError(f"max_errors must be >= 0, got {max_errors}")
        self.path = Path(path)
        self.format = format
        self.limit = limit
        self.max_errors = max_errors
        cursor = cursor or TraceCursor()
        self._offset = cursor.byte_offset
        self._line_no = cursor.line_no
        self._records = cursor.record_index
        self._skipped = cursor.skipped_lines
        self._handle: BinaryIO | None = open_trace(self.path)
        if cursor.byte_offset:
            self._handle.seek(cursor.byte_offset)

    @property
    def cursor(self) -> TraceCursor:
        """Position *after* the last yielded record (checkpoint-safe)."""
        return TraceCursor(
            byte_offset=self._offset,
            line_no=self._line_no,
            record_index=self._records,
            skipped_lines=self._skipped,
        )

    def close(self) -> None:
        """Close the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RecordStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __iter__(self) -> "RecordStream":
        return self

    def __next__(self) -> TraceRecord:
        handle = self._handle
        if handle is None:
            raise StopIteration
        limit = self.limit
        parse_line = self._parse_line
        while True:
            if limit is not None and self._records >= limit:
                self.close()
                raise StopIteration
            raw = handle.readline()
            if not raw:
                self.close()
                raise StopIteration
            self._offset += len(raw)
            self._line_no += 1
            line = raw.decode("utf-8", errors="replace").strip()
            try:
                record = parse_line(line, self.path, self._line_no)
            except TraceFormatError:
                if self._skipped < self.max_errors:
                    self._skipped += 1
                    continue
                self.close()
                raise
            if record is None:
                continue
            self._records += 1
            return record


def iter_trace_records(
    path: str | Path,
    format: str,
    *,
    limit: int | None = None,
    max_errors: int = 0,
) -> Iterator[TraceRecord]:
    """Stream the records of a trace file (gzip-transparent, bounded memory).

    The streaming counterpart of :func:`parse_spc` / :func:`parse_systor_csv`:
    yields records one at a time without ever materializing the trace.  With
    ``max_errors > 0`` up to that many malformed lines are skipped (counted)
    instead of aborting; use :class:`RecordStream` directly to read the skip
    count or to resume from a :class:`TraceCursor`.
    """
    stream = RecordStream(path, format, limit=limit, max_errors=max_errors)
    try:
        yield from stream
    finally:
        stream.close()


def iter_spc(
    path: str | Path, *, limit: int | None = None, max_errors: int = 0
) -> Iterator[TraceRecord]:
    """Stream an SPC-format trace (``ASU,LBA,size,opcode,timestamp``).

    This is the format of the UMass WebSearch traces; the LBA unit is a
    512-byte sector.  ``.gz`` files are decompressed transparently.
    """
    return iter_trace_records(path, "spc", limit=limit, max_errors=max_errors)


def iter_systor_csv(
    path: str | Path, *, limit: int | None = None, max_errors: int = 0
) -> Iterator[TraceRecord]:
    """Stream a Systor '17 style CSV trace (``timestamp,response,iotype,lun,offset,size``)."""
    return iter_trace_records(path, "systor", limit=limit, max_errors=max_errors)


def parse_spc(
    path: str | Path, *, limit: int | None = None, max_errors: int = 0
) -> list[TraceRecord]:
    """Parse an SPC-format trace into a list (thin wrapper over :func:`iter_spc`)."""
    return list(iter_spc(path, limit=limit, max_errors=max_errors))


def parse_systor_csv(
    path: str | Path, *, limit: int | None = None, max_errors: int = 0
) -> list[TraceRecord]:
    """Parse a Systor '17 CSV trace into a list (thin wrapper over :func:`iter_systor_csv`)."""
    return list(iter_systor_csv(path, limit=limit, max_errors=max_errors))


# -------------------------------------------------------------------- synthesis
def _synthesize(
    *,
    name: str,
    num_ios: int,
    read_ratio: float,
    mean_io_kb: float,
    address_space_bytes: int,
    interarrival_us: float,
    hot_fraction: float,
    hot_probability: float,
    seed: int,
) -> list[TraceRecord]:
    """Batch-generate one synthetic trace.

    All per-record draws (inter-arrival gaps, request sizes, read/write flags,
    hot-spot offsets) are sampled as whole NumPy arrays; only the final
    :class:`TraceRecord` construction remains a Python loop.  The stream is
    deterministic per seed.
    """
    if num_ios <= 0:
        return []
    rng = np.random.default_rng(seed)
    hotspot = HotspotGenerator(
        max(1, address_space_bytes // 4096),
        hot_fraction=hot_fraction,
        hot_probability=hot_probability,
        seed=seed,
    )
    timestamps = np.cumsum(rng.exponential(max(interarrival_us, 1e-3), size=num_ios)) / 1e6
    size_kb = np.maximum(4.0, rng.normal(mean_io_kb, mean_io_kb / 3, size=num_ios))
    size_bytes = np.maximum(4096, np.round(size_kb / 4.0).astype(np.int64) * 4096)
    is_read = rng.random(num_ios) < read_ratio
    offsets = np.asarray(hotspot.sample_many(num_ios), dtype=np.int64) * 4096
    return [
        TraceRecord(
            timestamp_s=timestamp,
            offset_bytes=offset,
            size_bytes=size,
            is_read=read,
        )
        for timestamp, offset, size, read in zip(
            timestamps.tolist(), offsets.tolist(), size_bytes.tolist(), is_read.tolist()
        )
    ]


def synthesize_websearch(
    variant: int = 1, *, num_ios: int = 20_000, seed: int | None = None
) -> list[TraceRecord]:
    """Synthetic WebSearch-like trace (read-only, ~15.5 KB mean I/O, strong locality)."""
    if variant not in (1, 2, 3):
        raise TraceFormatError("WebSearch variant must be 1, 2 or 3")
    presets = {
        1: dict(read_ratio=1.0, mean_io_kb=15.5, hot_probability=0.85),
        2: dict(read_ratio=0.9998, mean_io_kb=15.3, hot_probability=0.8),
        3: dict(read_ratio=0.9996, mean_io_kb=15.7, hot_probability=0.75),
    }
    params = presets[variant]
    return _synthesize(
        name=f"WebSearch{variant}",
        num_ios=num_ios,
        address_space_bytes=16 * 1024 ** 3,
        interarrival_us=300.0,
        hot_fraction=0.2,
        seed=seed if seed is not None else 100 + variant,
        **params,
    )


def synthesize_systor(*, num_ios: int = 20_000, seed: int = 104) -> list[TraceRecord]:
    """Synthetic Systor'17-like trace (61.6 % reads, ~10.25 KB mean I/O)."""
    return _synthesize(
        name="Systor17",
        num_ios=num_ios,
        read_ratio=0.616,
        mean_io_kb=10.25,
        address_space_bytes=32 * 1024 ** 3,
        interarrival_us=400.0,
        hot_fraction=0.3,
        hot_probability=0.7,
        seed=seed,
    )


#: Factories for the four traces used in Figures 21/22 and Table II.
TRACE_PRESETS = {
    "websearch1": lambda num_ios=20_000: synthesize_websearch(1, num_ios=num_ios),
    "websearch2": lambda num_ios=20_000: synthesize_websearch(2, num_ios=num_ios),
    "websearch3": lambda num_ios=20_000: synthesize_websearch(3, num_ios=num_ios),
    "systor17": lambda num_ios=20_000: synthesize_systor(num_ios=num_ios),
}


# ------------------------------------------------------------------ conversion
def trace_to_requests(
    records: Iterable[TraceRecord],
    geometry: SSDGeometry,
    *,
    preserve_timing: bool = True,
    time_scale: float = 1.0,
) -> Iterator[HostRequest]:
    """Convert byte-addressed trace records into page-granular host requests.

    Offsets are folded into the device's logical space with a modulo, which is
    the standard way papers replay traces captured on differently-sized
    volumes; locality structure is preserved.  An I/O that runs past the end of
    the logical space wraps around to LPN 0 (emitted as additional requests
    with the same timestamp and stream), so the replayed page volume matches
    the byte volume :func:`characterize` reports instead of being silently
    truncated.
    """
    page = geometry.page_size
    logical_pages = geometry.num_logical_pages
    for record in records:
        yield from _record_to_requests(
            record, page, logical_pages, preserve_timing=preserve_timing, time_scale=time_scale
        )


def _record_to_requests(
    record: TraceRecord,
    page: int,
    logical_pages: int,
    *,
    preserve_timing: bool,
    time_scale: float,
) -> Iterator[HostRequest]:
    """Expand one trace record into its page-granular host requests.

    Shared by :func:`trace_to_requests` and the streaming chunker
    (``repro.replay.stream.iter_trace_requests``) so both paths produce the
    same request sequence per record — including the wrap-to-LPN-0 split.
    """
    start_page = (record.offset_bytes // page) % logical_pages
    remaining = max(1, -(-record.size_bytes // page))
    issue_time = (record.timestamp_s * 1e6 * time_scale) if preserve_timing else None
    op = OpType.READ if record.is_read else OpType.WRITE
    while remaining > 0:
        npages = min(remaining, logical_pages - start_page)
        yield HostRequest(
            op=op,
            lpn=start_page,
            npages=npages,
            issue_time_us=issue_time,
            stream_id=record.stream_id,
        )
        remaining -= npages
        start_page = 0


def characterize(name: str, records: list[TraceRecord]) -> TraceCharacteristics:
    """Compute the Table II columns for a trace."""
    if not records:
        return TraceCharacteristics(name=name, num_ios=0, average_io_kb=0.0, read_ratio=0.0)
    total_kb = sum(r.size_bytes for r in records) / 1024.0
    reads = sum(1 for r in records if r.is_read)
    return TraceCharacteristics(
        name=name,
        num_ios=len(records),
        average_io_kb=total_kb / len(records),
        read_ratio=reads / len(records),
    )
