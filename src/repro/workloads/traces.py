"""Block-trace ingestion and synthetic stand-ins for the paper's four traces.

The paper replays three UMass WebSearch traces (SPC format) and one Systor '17
enterprise VDI trace (CSV format).  Those files cannot be shipped here, so this
module provides both:

* **parsers** for the two on-disk formats (:func:`parse_spc`, :func:`parse_systor_csv`),
  so the real traces can be dropped in if available; and
* **synthetic generators** whose request streams match the characteristics the
  paper reports in Table II (I/O count, mean request size, read ratio) plus a
  strong hot-range locality, which is the property the tail-latency and energy
  experiments depend on.

Every record is expressed as a :class:`TraceRecord` in byte units and converted
to page-granular :class:`~repro.ssd.request.HostRequest` objects against a
concrete device geometry (scaling LBAs into the logical space, as the paper
does when it "scales up" the old WebSearch traces to modern SSD sizes).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

import numpy as np

from repro.nand.errors import TraceFormatError
from repro.nand.geometry import SSDGeometry
from repro.ssd.request import HostRequest, OpType
from repro.workloads.zipf import HotspotGenerator

__all__ = [
    "TraceRecord",
    "TraceCharacteristics",
    "parse_spc",
    "parse_systor_csv",
    "synthesize_websearch",
    "synthesize_systor",
    "trace_to_requests",
    "characterize",
    "TRACE_PRESETS",
]


@dataclass(frozen=True)
class TraceRecord:
    """One block-level trace record (byte-addressed)."""

    timestamp_s: float
    offset_bytes: int
    size_bytes: int
    is_read: bool
    stream_id: int = 0


@dataclass(frozen=True)
class TraceCharacteristics:
    """Aggregate statistics of a trace (the columns of Table II)."""

    name: str
    num_ios: int
    average_io_kb: float
    read_ratio: float

    def as_row(self) -> dict[str, float | str | int]:
        """Row representation used by the Table II harness."""
        return {
            "trace": self.name,
            "num_ios": self.num_ios,
            "avg_io_kb": round(self.average_io_kb, 2),
            "read_ratio": round(self.read_ratio, 4),
        }


# --------------------------------------------------------------------- parsing
def parse_spc(path: str | Path, *, limit: int | None = None) -> list[TraceRecord]:
    """Parse an SPC-format trace (``ASU,LBA,size,opcode,timestamp``).

    This is the format of the UMass WebSearch traces; the LBA unit is a 512-byte
    sector.
    """
    records: list[TraceRecord] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(",")
            if len(parts) < 5:
                raise TraceFormatError(f"{path}:{line_no}: expected 5 SPC fields, got {len(parts)}")
            try:
                asu = int(parts[0])
                lba = int(parts[1])
                size = int(parts[2])
                opcode = parts[3].strip().lower()
                timestamp = float(parts[4])
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{line_no}: malformed SPC record") from exc
            records.append(
                TraceRecord(
                    timestamp_s=timestamp,
                    offset_bytes=lba * 512,
                    size_bytes=size,
                    is_read=opcode.startswith("r"),
                    stream_id=asu,
                )
            )
            if limit is not None and len(records) >= limit:
                break
    return records


def parse_systor_csv(path: str | Path, *, limit: int | None = None) -> list[TraceRecord]:
    """Parse a Systor '17 style CSV trace (``timestamp,response,iotype,lun,offset,size``)."""
    records: list[TraceRecord] = []
    with open(path, "r", encoding="utf-8", errors="replace") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line or line.lower().startswith("timestamp"):
                continue
            parts = line.split(",")
            if len(parts) < 6:
                raise TraceFormatError(
                    f"{path}:{line_no}: expected 6 Systor fields, got {len(parts)}"
                )
            try:
                timestamp = float(parts[0])
                iotype = parts[2].strip().upper()
                lun = int(parts[3]) if parts[3].strip() else 0
                offset = int(parts[4])
                size = int(parts[5])
            except ValueError as exc:
                raise TraceFormatError(f"{path}:{line_no}: malformed Systor record") from exc
            records.append(
                TraceRecord(
                    timestamp_s=timestamp,
                    offset_bytes=offset,
                    size_bytes=size,
                    is_read=iotype in ("R", "READ"),
                    stream_id=lun,
                )
            )
            if limit is not None and len(records) >= limit:
                break
    return records


# -------------------------------------------------------------------- synthesis
def _synthesize(
    *,
    name: str,
    num_ios: int,
    read_ratio: float,
    mean_io_kb: float,
    address_space_bytes: int,
    interarrival_us: float,
    hot_fraction: float,
    hot_probability: float,
    seed: int,
) -> list[TraceRecord]:
    """Batch-generate one synthetic trace.

    All per-record draws (inter-arrival gaps, request sizes, read/write flags,
    hot-spot offsets) are sampled as whole NumPy arrays; only the final
    :class:`TraceRecord` construction remains a Python loop.  The stream is
    deterministic per seed.
    """
    if num_ios <= 0:
        return []
    rng = np.random.default_rng(seed)
    hotspot = HotspotGenerator(
        max(1, address_space_bytes // 4096),
        hot_fraction=hot_fraction,
        hot_probability=hot_probability,
        seed=seed,
    )
    timestamps = np.cumsum(rng.exponential(max(interarrival_us, 1e-3), size=num_ios)) / 1e6
    size_kb = np.maximum(4.0, rng.normal(mean_io_kb, mean_io_kb / 3, size=num_ios))
    size_bytes = np.maximum(4096, np.round(size_kb / 4.0).astype(np.int64) * 4096)
    is_read = rng.random(num_ios) < read_ratio
    offsets = np.asarray(hotspot.sample_many(num_ios), dtype=np.int64) * 4096
    return [
        TraceRecord(
            timestamp_s=timestamp,
            offset_bytes=offset,
            size_bytes=size,
            is_read=read,
        )
        for timestamp, offset, size, read in zip(
            timestamps.tolist(), offsets.tolist(), size_bytes.tolist(), is_read.tolist()
        )
    ]


def synthesize_websearch(
    variant: int = 1, *, num_ios: int = 20_000, seed: int | None = None
) -> list[TraceRecord]:
    """Synthetic WebSearch-like trace (read-only, ~15.5 KB mean I/O, strong locality)."""
    if variant not in (1, 2, 3):
        raise TraceFormatError("WebSearch variant must be 1, 2 or 3")
    presets = {
        1: dict(read_ratio=1.0, mean_io_kb=15.5, hot_probability=0.85),
        2: dict(read_ratio=0.9998, mean_io_kb=15.3, hot_probability=0.8),
        3: dict(read_ratio=0.9996, mean_io_kb=15.7, hot_probability=0.75),
    }
    params = presets[variant]
    return _synthesize(
        name=f"WebSearch{variant}",
        num_ios=num_ios,
        address_space_bytes=16 * 1024 ** 3,
        interarrival_us=300.0,
        hot_fraction=0.2,
        seed=seed if seed is not None else 100 + variant,
        **params,
    )


def synthesize_systor(*, num_ios: int = 20_000, seed: int = 104) -> list[TraceRecord]:
    """Synthetic Systor'17-like trace (61.6 % reads, ~10.25 KB mean I/O)."""
    return _synthesize(
        name="Systor17",
        num_ios=num_ios,
        read_ratio=0.616,
        mean_io_kb=10.25,
        address_space_bytes=32 * 1024 ** 3,
        interarrival_us=400.0,
        hot_fraction=0.3,
        hot_probability=0.7,
        seed=seed,
    )


#: Factories for the four traces used in Figures 21/22 and Table II.
TRACE_PRESETS = {
    "websearch1": lambda num_ios=20_000: synthesize_websearch(1, num_ios=num_ios),
    "websearch2": lambda num_ios=20_000: synthesize_websearch(2, num_ios=num_ios),
    "websearch3": lambda num_ios=20_000: synthesize_websearch(3, num_ios=num_ios),
    "systor17": lambda num_ios=20_000: synthesize_systor(num_ios=num_ios),
}


# ------------------------------------------------------------------ conversion
def trace_to_requests(
    records: Iterable[TraceRecord],
    geometry: SSDGeometry,
    *,
    preserve_timing: bool = True,
    time_scale: float = 1.0,
) -> Iterator[HostRequest]:
    """Convert byte-addressed trace records into page-granular host requests.

    Offsets are folded into the device's logical space with a modulo, which is
    the standard way papers replay traces captured on differently-sized
    volumes; locality structure is preserved.  An I/O that runs past the end of
    the logical space wraps around to LPN 0 (emitted as additional requests
    with the same timestamp and stream), so the replayed page volume matches
    the byte volume :func:`characterize` reports instead of being silently
    truncated.
    """
    page = geometry.page_size
    logical_pages = geometry.num_logical_pages
    for record in records:
        start_page = (record.offset_bytes // page) % logical_pages
        remaining = max(1, -(-record.size_bytes // page))
        issue_time = (record.timestamp_s * 1e6 * time_scale) if preserve_timing else None
        op = OpType.READ if record.is_read else OpType.WRITE
        while remaining > 0:
            npages = min(remaining, logical_pages - start_page)
            yield HostRequest(
                op=op,
                lpn=start_page,
                npages=npages,
                issue_time_us=issue_time,
                stream_id=record.stream_id,
            )
            remaining -= npages
            start_page = 0


def characterize(name: str, records: list[TraceRecord]) -> TraceCharacteristics:
    """Compute the Table II columns for a trace."""
    if not records:
        return TraceCharacteristics(name=name, num_ios=0, average_io_kb=0.0, read_ratio=0.0)
    total_kb = sum(r.size_bytes for r in records) / 1024.0
    reads = sum(1 for r in records if r.is_read)
    return TraceCharacteristics(
        name=name,
        num_ios=len(records),
        average_io_kb=total_kb / len(records),
        read_ratio=reads / len(records),
    )
