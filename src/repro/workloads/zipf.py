"""Bounded Zipf and hot-spot address distributions.

Real block traces are rarely uniform: a small set of logical addresses absorbs
most of the traffic.  The synthetic trace generators in
:mod:`repro.workloads.traces` and the Filebench model use these helpers to give
their request streams controllable locality.

Both generators expose a scalar ``sample()`` and a batched ``sample_many()``.
The batched path is what the experiment harnesses use: drawing a whole stream
at once amortizes the NumPy call overhead that dominates per-draw sampling.
``ZipfGenerator.sample_many`` is bit-identical to repeated ``sample()`` calls
(same uniform stream, same search); ``HotspotGenerator.sample_many`` draws from
a dedicated NumPy stream, so it is deterministic per seed but statistically —
not bitwise — equivalent to the scalar path.
"""

from __future__ import annotations

import random

import numpy as np

__all__ = ["ZipfGenerator", "HotspotGenerator"]


class ZipfGenerator:
    """Draw integers in ``[0, n)`` with a Zipf(``theta``) popularity skew.

    The implementation precomputes the CDF once (O(n)) and then samples by
    binary search (O(log n) per draw), which is fast enough for the trace sizes
    used in the experiments and exactly reproducible from the seed.
    """

    def __init__(self, n: int, theta: float = 0.99, *, seed: int = 1) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if theta < 0:
            raise ValueError("theta must be non-negative")
        self.n = n
        self.theta = theta
        self._rng = random.Random(seed)
        ranks = np.arange(1, n + 1, dtype=float)
        weights = ranks ** (-theta)
        self._cdf = np.cumsum(weights)
        self._cdf /= self._cdf[-1]
        # Popular ranks are shuffled over the address space so the hottest
        # addresses are not simply the lowest LPNs.
        permutation_rng = np.random.default_rng(seed)
        self._permutation = permutation_rng.permutation(n)

    def sample(self) -> int:
        """Draw one value."""
        u = self._rng.random()
        rank = int(np.searchsorted(self._cdf, u))
        return int(self._permutation[min(rank, self.n - 1)])

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` values (bit-identical to ``count`` ``sample()`` calls)."""
        if count <= 0:
            return []
        rng_random = self._rng.random
        u = np.fromiter((rng_random() for _ in range(count)), dtype=np.float64, count=count)
        ranks = np.searchsorted(self._cdf, u)
        np.minimum(ranks, self.n - 1, out=ranks)
        return self._permutation[ranks].tolist()


class HotspotGenerator:
    """Draw integers where ``hot_fraction`` of the space gets ``hot_probability`` of accesses.

    This is the classic 80/20 style generator ("20 % of the addresses receive
    80 % of the requests") used to model the strong locality of the WebSearch
    and Systor traces (Table II).
    """

    def __init__(
        self,
        n: int,
        *,
        hot_fraction: float = 0.2,
        hot_probability: float = 0.8,
        seed: int = 1,
    ) -> None:
        if n <= 0:
            raise ValueError("n must be positive")
        if not 0.0 < hot_fraction < 1.0:
            raise ValueError("hot_fraction must be in (0, 1)")
        if not 0.0 < hot_probability < 1.0:
            raise ValueError("hot_probability must be in (0, 1)")
        self.n = n
        self.hot_fraction = hot_fraction
        self.hot_probability = hot_probability
        self._rng = random.Random(seed)
        self._batch_rng = np.random.default_rng(seed)
        self._hot_size = max(1, int(n * hot_fraction))
        # Place the hot region at a seed-dependent offset so different streams
        # do not collide on the same LPNs.
        self._hot_start = self._rng.randrange(0, max(1, n - self._hot_size))

    def sample(self) -> int:
        """Draw one value."""
        if self._rng.random() < self.hot_probability:
            return self._hot_start + self._rng.randrange(self._hot_size)
        return self._rng.randrange(self.n)

    def sample_many(self, count: int) -> list[int]:
        """Draw ``count`` values in one vectorized batch (own NumPy stream)."""
        if count <= 0:
            return []
        rng = self._batch_rng
        hot = rng.random(count) < self.hot_probability
        values = np.empty(count, dtype=np.int64)
        num_hot = int(hot.sum())
        values[hot] = self._hot_start + rng.integers(0, self._hot_size, size=num_hot)
        values[~hot] = rng.integers(0, self.n, size=count - num_hot)
        return values.tolist()
