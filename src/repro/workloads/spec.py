"""Construct workloads from declarative spec dictionaries.

The study subsystem (:mod:`repro.studies`) sweeps workloads as one axis of a
scenario grid; each axis value is a plain dictionary like::

    {"kind": "fio", "pattern": "randread"}
    {"kind": "zipf", "theta": 0.99}
    {"kind": "hotspot", "read_fraction": 0.7}
    {"kind": "trace", "name": "websearch1"}

:func:`build_workload` validates such a dictionary (unknown keys and
ill-typed values raise :class:`~repro.nand.errors.ConfigurationError` naming
the offending key) and returns a :class:`WorkloadPlan` that can generate the
request stream for any geometry.  Request counts default to the experiment
scale's budgets, so a study spec stays scale-independent unless it pins
``num_requests`` explicitly.

Everything here routes through the existing generators — :class:`FioJob`,
:func:`zipf_reads` / :func:`hotspot_stream` / :func:`mixed_stream` and the
:data:`TRACE_PRESETS` synthesizers — so spec-built workloads are bit-identical
to hand-built ones with the same parameters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Mapping

from repro.nand.errors import ConfigurationError
from repro.nand.geometry import SSDGeometry
from repro.ssd.request import HostRequest
from repro.workloads.fio import FioJob, FioPattern
from repro.workloads.synthetic import hotspot_stream, mixed_stream, zipf_reads
from repro.workloads.traces import TRACE_PRESETS, trace_to_requests

__all__ = ["WORKLOAD_KINDS", "WorkloadPlan", "build_workload"]

#: Workload kinds understood by :func:`build_workload`.
WORKLOAD_KINDS: tuple[str, ...] = ("fio", "zipf", "hotspot", "mixed", "trace")

#: Allowed keys per kind (beyond the mandatory ``kind`` and optional ``label``).
_KIND_FIELDS: dict[str, tuple[str, ...]] = {
    "fio": ("pattern", "io_pages", "span_fraction", "seed", "num_requests"),
    "zipf": ("theta", "io_pages", "seed", "num_requests"),
    "hotspot": (
        "read_fraction",
        "hot_fraction",
        "hot_probability",
        "io_pages",
        "seed",
        "num_requests",
    ),
    "mixed": ("read_fraction", "io_pages", "seed", "num_requests"),
    "trace": ("name", "num_ios", "time_scale"),
}


@dataclass(frozen=True)
class WorkloadPlan:
    """A validated, geometry-independent workload ready to generate requests.

    Attributes
    ----------
    kind:
        Workload kind (one of :data:`WORKLOAD_KINDS`).
    label:
        Short axis-value label used in study cell names and result columns.
    description:
        Human-readable one-liner for reports.
    replay:
        ``True`` when the stream carries arrival timestamps and must run
        open-loop through :meth:`repro.ssd.device.SSD.replay`; ``False`` for
        closed-loop :meth:`~repro.ssd.device.SSD.run` streams.
    num_requests:
        Number of host requests (or trace I/Os) the plan generates.
    params:
        The fully-defaulted parameter mapping (spec round-trip / cache keys).
    """

    kind: str
    label: str
    description: str
    replay: bool
    num_requests: int
    params: tuple[tuple[str, Any], ...]

    def requests(self, geometry: SSDGeometry) -> Iterator[HostRequest]:
        """Yield the plan's host requests sized to ``geometry``."""
        params = dict(self.params)
        if self.kind == "fio":
            job = FioJob(
                FioPattern(params["pattern"]),
                self.num_requests,
                io_pages=params["io_pages"],
                seed=params["seed"],
                span_fraction=params["span_fraction"],
            )
            return job.requests(geometry)
        if self.kind == "zipf":
            return zipf_reads(
                geometry,
                num_requests=self.num_requests,
                theta=params["theta"],
                io_pages=params["io_pages"],
                seed=params["seed"],
            )
        if self.kind == "hotspot":
            return hotspot_stream(
                geometry,
                num_requests=self.num_requests,
                read_fraction=params["read_fraction"],
                hot_fraction=params["hot_fraction"],
                hot_probability=params["hot_probability"],
                io_pages=params["io_pages"],
                seed=params["seed"],
            )
        if self.kind == "mixed":
            return mixed_stream(
                geometry,
                num_requests=self.num_requests,
                read_fraction=params["read_fraction"],
                io_pages=params["io_pages"],
                seed=params["seed"],
            )
        records = TRACE_PRESETS[params["name"]](self.num_requests)
        return trace_to_requests(records, geometry, time_scale=params["time_scale"])


def _context(spec: Mapping[str, Any]) -> str:
    kind = spec.get("kind", "<missing>")
    return f"workload spec (kind={kind!r})"


def _get(
    spec: Mapping[str, Any],
    key: str,
    default: Any,
    expected: type | tuple[type, ...],
) -> Any:
    """Fetch and type-check one optional field, naming the key on failure."""
    value = spec.get(key, default)
    if isinstance(value, bool) or not isinstance(value, expected):
        raise ConfigurationError(
            f"{_context(spec)}: field {key!r} expects "
            f"{expected.__name__ if isinstance(expected, type) else 'number'}, got {value!r}"
        )
    return value


def build_workload(
    spec: Mapping[str, Any],
    *,
    read_requests: int,
    write_requests: int,
) -> WorkloadPlan:
    """Validate one workload spec dictionary into a :class:`WorkloadPlan`.

    ``read_requests`` / ``write_requests`` supply the default request budget
    (normally from the experiment :class:`~repro.experiments.runner.ScaleSpec`)
    when the spec does not pin ``num_requests`` (or ``num_ios`` for traces).
    Unknown kinds, unknown keys and ill-typed values raise
    :class:`ConfigurationError` naming the offending key.
    """
    if not isinstance(spec, Mapping):
        raise ConfigurationError(f"workload spec must be a mapping, got {spec!r}")
    kind = spec.get("kind")
    if kind not in _KIND_FIELDS:
        raise ConfigurationError(
            f"workload spec field 'kind' must be one of {list(WORKLOAD_KINDS)}, got {kind!r}"
        )
    allowed = set(_KIND_FIELDS[kind]) | {"kind", "label"}
    for key in spec:
        if key not in allowed:
            raise ConfigurationError(
                f"{_context(spec)}: unknown field {key!r}; "
                f"allowed fields: {sorted(allowed)}"
            )
    label = spec.get("label")
    if label is not None and (not isinstance(label, str) or not label):
        raise ConfigurationError(f"{_context(spec)}: field 'label' must be a non-empty string")

    if kind == "fio":
        pattern = spec.get("pattern")
        valid_patterns = [member.value for member in FioPattern]
        if pattern not in valid_patterns:
            raise ConfigurationError(
                f"{_context(spec)}: field 'pattern' must be one of {valid_patterns}, "
                f"got {pattern!r}"
            )
        is_read = FioPattern(pattern).is_read
        budget = read_requests if is_read else write_requests
        params = {
            "pattern": pattern,
            "io_pages": _get(spec, "io_pages", 1, int),
            "span_fraction": float(_get(spec, "span_fraction", 1.0, (int, float))),
            "seed": _get(spec, "seed", 42, int),
        }
        num_requests = _get(spec, "num_requests", budget, int)
        default_label = pattern
        description = f"fio {pattern} x{num_requests}"
        replay = False
    elif kind == "zipf":
        params = {
            "theta": float(_get(spec, "theta", 0.99, (int, float))),
            "io_pages": _get(spec, "io_pages", 1, int),
            "seed": _get(spec, "seed", 23, int),
        }
        num_requests = _get(spec, "num_requests", read_requests, int)
        default_label = f"zipf{params['theta']:g}"
        description = f"zipf(theta={params['theta']:g}) reads x{num_requests}"
        replay = False
    elif kind == "hotspot":
        params = {
            "read_fraction": float(_get(spec, "read_fraction", 0.7, (int, float))),
            "hot_fraction": float(_get(spec, "hot_fraction", 0.2, (int, float))),
            "hot_probability": float(_get(spec, "hot_probability", 0.8, (int, float))),
            "io_pages": _get(spec, "io_pages", 1, int),
            "seed": _get(spec, "seed", 29, int),
        }
        num_requests = _get(spec, "num_requests", read_requests, int)
        default_label = f"hotspot{params['hot_probability']:g}"
        description = (
            f"hotspot mix ({params['hot_probability']:.0%} of I/O on "
            f"{params['hot_fraction']:.0%} of the space) x{num_requests}"
        )
        replay = False
    elif kind == "mixed":
        params = {
            "read_fraction": float(_get(spec, "read_fraction", 0.5, (int, float))),
            "io_pages": _get(spec, "io_pages", 1, int),
            "seed": _get(spec, "seed", 17, int),
        }
        num_requests = _get(spec, "num_requests", read_requests, int)
        default_label = f"mixed{params['read_fraction']:g}"
        description = f"uniform mix ({params['read_fraction']:.0%} reads) x{num_requests}"
        replay = False
    else:  # trace
        name = spec.get("name")
        if name not in TRACE_PRESETS:
            raise ConfigurationError(
                f"{_context(spec)}: field 'name' must be one of "
                f"{sorted(TRACE_PRESETS)}, got {name!r}"
            )
        params = {
            "name": name,
            "time_scale": float(_get(spec, "time_scale", 0.05, (int, float))),
        }
        num_requests = _get(spec, "num_ios", read_requests, int)
        default_label = name
        description = f"trace replay of {name} x{num_requests}"
        replay = True

    if num_requests <= 0:
        key = "num_ios" if kind == "trace" else "num_requests"
        raise ConfigurationError(f"{_context(spec)}: field {key!r} must be positive")
    for key in ("io_pages",):
        if key in params and params[key] <= 0:
            raise ConfigurationError(f"{_context(spec)}: field {key!r} must be positive")

    return WorkloadPlan(
        kind=kind,
        label=label or default_label,
        description=description,
        replay=replay,
        num_requests=num_requests,
        params=tuple(sorted(params.items())),
    )
