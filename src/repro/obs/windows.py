"""Interval-windowed telemetry over the simulated clock.

:class:`WindowedRecorder` buckets per-request activity into fixed-width
windows of width ``window_us`` **of simulated time**: window ``w`` covers
``[w * window_us, (w + 1) * window_us)`` and every quantity a request
produces — the request itself, its latency, its flash commands and their
chip busy time, its read-outcome class — is attributed to the window of its
**issue time**.  GC activity is attributed to the window of the GC event's
trigger time (``GCEvent.time_us``) when the series is built, so the window
series of a run is a pure function of the same quantities the golden
fingerprints pin.

Attribution is strictly per request, using only quantities both execution
modes compute identically: the scalar loop walks the request's encoded
:class:`~repro.ssd.request.CommandBuffer` while the batched kernel records
the (data, translation, program) commands its planner shapes imply.  Because
both modes process requests in the same order with bit-identical issue
times, the per-window series — including the float busy-time accumulators —
is **bit-identical between the scalar and batched kernels**, which
``tests/test_obs.py`` pins.

Windows live in a dictionary of per-window accumulators (open-loop trace
replay issues requests out of window order across streams, so windows can
never be closed eagerly); the latency populations inside reuse the
grow-by-doubling :class:`~repro.ssd.stats.LatencyBuffer` columns.  The whole
recorder round-trips through ``state_dict()`` / ``load_state()``, so a
snapshot-resume run reproduces the exact series of an uninterrupted one.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np

from repro.nand.errors import ConfigurationError
from repro.ssd.request import (
    NUM_COMMAND_CODES,
    NUM_PURPOSES,
    CommandKind,
    CommandPurpose,
    ReadOutcome,
    command_code,
)
from repro.ssd.stats import LatencyBuffer, LatencyDigest, SimulationStats

__all__ = ["WindowedRecorder"]

#: Highest outcome code of the single-read ("hit") class: BUFFER_HIT,
#: CMT_HIT and MODEL_HIT resolve the mapping without an extra flash read;
#: DOUBLE_READ / TRIPLE_READ (the higher codes) are the miss class.
_HIT_CLASS_MAX = ReadOutcome.MODEL_HIT.code

_READ_BASE = CommandKind.READ.code * NUM_PURPOSES
_PROGRAM_BASE = CommandKind.PROGRAM.code * NUM_PURPOSES
_ERASE_BASE = CommandKind.ERASE.code * NUM_PURPOSES
_CODE_TRANSLATION_READ = command_code(CommandKind.READ, CommandPurpose.TRANSLATION_READ)

#: Integer per-window columns, in serialization order.
_INT_COLUMNS = ("reads", "writes", "read_pages", "write_pages", "read_hits", "read_misses")


class _Window:
    """Accumulator of one open window (mutated in place on the hot path)."""

    __slots__ = (
        "reads",
        "writes",
        "read_pages",
        "write_pages",
        "read_hits",
        "read_misses",
        "busy_time_us",
        "command_counts",
        "read_latencies",
        "write_latencies",
    )

    def __init__(self) -> None:
        self.reads = 0
        self.writes = 0
        self.read_pages = 0
        self.write_pages = 0
        self.read_hits = 0
        self.read_misses = 0
        self.busy_time_us = 0.0
        self.command_counts = [0] * NUM_COMMAND_CODES
        self.read_latencies = LatencyBuffer()
        self.write_latencies = LatencyBuffer()


class WindowedRecorder:
    """Bucket per-request telemetry into fixed windows of the simulated clock."""

    def __init__(self, window_us: float) -> None:
        if not window_us > 0.0:
            raise ConfigurationError(f"window_us must be positive, got {window_us!r}")
        self.window_us = float(window_us)
        self._windows: dict[int, _Window] = {}
        #: Per-code command durations, aliased from the engine's latency table
        #: (rebound by the device whenever it rebuilds its engine).
        self._durations: list[float] = [0.0] * NUM_COMMAND_CODES

    # ------------------------------------------------------------- binding
    def bind_durations(self, durations: list[float]) -> None:
        """Alias the engine's per-code latency table for busy-time attribution."""
        self._durations = durations

    def reset(self) -> None:
        """Drop every window (a fresh measurement interval after ``reset_stats``).

        ``reset_stats`` also rewinds the simulated clock to zero, so window 0
        restarts aligned with the new measurement interval — warm-up windows
        never leak into it.
        """
        self._windows.clear()

    # ----------------------------------------------------------- recording
    def _get(self, issue_us: float) -> _Window:
        index = int(issue_us / self.window_us)
        window = self._windows.get(index)
        if window is None:
            window = self._windows[index] = _Window()
        return window

    def record_scalar(
        self, is_read: bool, npages: int, issue_us: float, latency_us: float, buffer
    ) -> None:
        """Attribute one scalar-path request: walk its encoded command buffer.

        ``buffer.ops`` holds exactly the commands the engine just executed
        for this request (stride-4 records, command code first), so counting
        and busy-time accumulation here mirror the engine's accounting
        command for command — in the same order, which keeps the per-window
        float sums bit-identical to the batched kernel's attribution.
        """
        window = self._get(issue_us)
        if is_read:
            window.reads += 1
            window.read_pages += npages
            window.read_latencies.append(latency_us)
            hits = 0
            for code in buffer.outcome_codes:
                if code <= _HIT_CLASS_MAX:
                    hits += 1
            window.read_hits += hits
            window.read_misses += len(buffer.outcome_codes) - hits
        else:
            window.writes += 1
            window.write_pages += npages
            window.write_latencies.append(latency_us)
        ops = buffer.ops
        counts = window.command_counts
        durations = self._durations
        busy = window.busy_time_us
        for i in range(0, len(ops), 4):
            code = ops[i]
            counts[code] += 1
            busy += durations[code]
        window.busy_time_us = busy

    def record_fast_read(
        self,
        issue_us: float,
        latency_us: float,
        data_code: int,
        trans_code: int,
        has_translation: bool,
    ) -> None:
        """Attribute one batched-kernel read (one data read, optional translation).

        A planner-served read is a hit-class outcome exactly when it needed no
        translation read (``trans_chips[i] < 0`` in the engine's batch loop),
        so the hit/miss split matches the outcome codes the scalar path walks.
        The translation duration is added before the data duration — the order
        the scalar path's buffer walk produces — keeping busy sums bitwise
        equal.
        """
        window = self._get(issue_us)
        window.reads += 1
        window.read_pages += 1
        window.read_latencies.append(latency_us)
        counts = window.command_counts
        durations = self._durations
        if has_translation:
            window.read_misses += 1
            counts[trans_code] += 1
            window.busy_time_us += durations[trans_code]
        else:
            window.read_hits += 1
        counts[data_code] += 1
        window.busy_time_us += durations[data_code]

    def record_fast_write(self, issue_us: float, latency_us: float, code: int) -> None:
        """Attribute one batched-kernel write (a single program command)."""
        window = self._get(issue_us)
        window.writes += 1
        window.write_pages += 1
        window.write_latencies.append(latency_us)
        window.command_counts[code] += 1
        window.busy_time_us += self._durations[code]

    # -------------------------------------------------------------- series
    def window_count(self) -> int:
        """Number of touched (non-empty) windows."""
        return len(self._windows)

    def series(self, stats: SimulationStats | None = None) -> dict[str, Any]:
        """Build the per-window time series as plain JSON-serializable columns.

        Windows run contiguously from 0 to the highest touched index (gaps
        are emitted as all-zero windows so the series plots directly).  When
        ``stats`` is given, its GC events are bucketed by trigger time into
        ``gc_count`` / ``gc_pages_moved`` / ``gc_flash_time_us`` columns and
        its chip count feeds the per-window ``utilization`` column.
        """
        width = self.window_us
        gc_windows: dict[int, list[float]] = {}
        num_chips = 0
        if stats is not None:
            num_chips = stats.num_chips
            for event in stats.gc_events:
                bucket = gc_windows.setdefault(int(event.time_us / width), [0.0, 0.0, 0.0])
                bucket[0] += 1.0
                bucket[1] += float(event.pages_moved)
                bucket[2] += event.flash_time_us
        last = -1
        if self._windows:
            last = max(self._windows)
        if gc_windows:
            last = max(last, max(gc_windows))
        columns: dict[str, Any] = {
            "window_us": width,
            "num_windows": last + 1,
            "index": [],
            "start_us": [],
            "reads": [],
            "writes": [],
            "read_pages": [],
            "write_pages": [],
            "read_hits": [],
            "read_misses": [],
            "flash_reads": [],
            "flash_programs": [],
            "flash_erases": [],
            "translation_reads": [],
            "busy_time_us": [],
            "iops": [],
            "write_amplification": [],
            "utilization": [],
            "gc_count": [],
            "gc_pages_moved": [],
            "gc_flash_time_us": [],
            "read_mean_us": [],
            "read_p50_us": [],
            "read_p99_us": [],
            "read_p999_us": [],
            "read_max_us": [],
            "write_mean_us": [],
            "write_p50_us": [],
            "write_p99_us": [],
            "write_p999_us": [],
            "write_max_us": [],
        }
        empty = _Window()
        window_seconds = width / 1_000_000.0
        for index in range(last + 1):
            window = self._windows.get(index, empty)
            counts = window.command_counts
            flash_reads = sum(counts[_READ_BASE : _READ_BASE + NUM_PURPOSES])
            flash_programs = sum(counts[_PROGRAM_BASE : _PROGRAM_BASE + NUM_PURPOSES])
            flash_erases = sum(counts[_ERASE_BASE : _ERASE_BASE + NUM_PURPOSES])
            gc_count, gc_pages, gc_flash = gc_windows.get(index, (0.0, 0.0, 0.0))
            read_digest = LatencyDigest.from_samples(window.read_latencies)
            write_digest = LatencyDigest.from_samples(window.write_latencies)
            columns["index"].append(index)
            columns["start_us"].append(index * width)
            columns["reads"].append(window.reads)
            columns["writes"].append(window.writes)
            columns["read_pages"].append(window.read_pages)
            columns["write_pages"].append(window.write_pages)
            columns["read_hits"].append(window.read_hits)
            columns["read_misses"].append(window.read_misses)
            columns["flash_reads"].append(flash_reads)
            columns["flash_programs"].append(flash_programs)
            columns["flash_erases"].append(flash_erases)
            columns["translation_reads"].append(counts[_CODE_TRANSLATION_READ])
            columns["busy_time_us"].append(window.busy_time_us)
            columns["iops"].append((window.reads + window.writes) / window_seconds)
            columns["write_amplification"].append(
                flash_programs / window.write_pages if window.write_pages else 0.0
            )
            columns["utilization"].append(
                window.busy_time_us / (width * num_chips) if num_chips else 0.0
            )
            columns["gc_count"].append(int(gc_count))
            columns["gc_pages_moved"].append(int(gc_pages))
            columns["gc_flash_time_us"].append(gc_flash)
            columns["read_mean_us"].append(read_digest.mean_us)
            columns["read_p50_us"].append(read_digest.p50_us)
            columns["read_p99_us"].append(read_digest.p99_us)
            columns["read_p999_us"].append(read_digest.p999_us)
            columns["read_max_us"].append(read_digest.max_us)
            columns["write_mean_us"].append(write_digest.mean_us)
            columns["write_p50_us"].append(write_digest.p50_us)
            columns["write_p99_us"].append(write_digest.p99_us)
            columns["write_p999_us"].append(write_digest.p999_us)
            columns["write_max_us"].append(write_digest.max_us)
        return columns

    # ----------------------------------------------------------- invariants
    def totals(self) -> dict[str, Any]:
        """Sum every counter over all windows (for the sum-of-windows checks).

        Integer counters sum exactly; ``busy_time_us`` is summed with
        :func:`math.fsum` because the per-window partials were accumulated in
        a different association order than the engine's per-chip totals.
        """
        windows = list(self._windows.values())
        command_counts = [0] * NUM_COMMAND_CODES
        for window in windows:
            for code, count in enumerate(window.command_counts):
                command_counts[code] += count
        return {
            "reads": sum(w.reads for w in windows),
            "writes": sum(w.writes for w in windows),
            "read_pages": sum(w.read_pages for w in windows),
            "write_pages": sum(w.write_pages for w in windows),
            "read_hits": sum(w.read_hits for w in windows),
            "read_misses": sum(w.read_misses for w in windows),
            "command_counts": command_counts,
            "busy_time_us": math.fsum(w.busy_time_us for w in windows),
            "read_latency_count": sum(len(w.read_latencies) for w in windows),
            "write_latency_count": sum(len(w.write_latencies) for w in windows),
        }

    # ------------------------------------------------------ snapshot support
    def state_dict(self) -> dict[str, Any]:
        """Capture every open window (columnar arrays + ragged latency packs)."""
        indices = sorted(self._windows)
        windows = [self._windows[i] for i in indices]
        state: dict[str, Any] = {
            "window_us": self.window_us,
            "index": np.asarray(indices, dtype=np.int64),
            "busy_time_us": np.asarray([w.busy_time_us for w in windows], dtype=np.float64),
            "command_counts": np.asarray(
                [w.command_counts for w in windows], dtype=np.int64
            ).reshape(len(windows), NUM_COMMAND_CODES),
            "read_latency_counts": np.asarray(
                [len(w.read_latencies) for w in windows], dtype=np.int64
            ),
            "write_latency_counts": np.asarray(
                [len(w.write_latencies) for w in windows], dtype=np.int64
            ),
            "read_latencies": (
                np.concatenate([w.read_latencies.array() for w in windows])
                if windows
                else np.empty(0, dtype=np.float64)
            ),
            "write_latencies": (
                np.concatenate([w.write_latencies.array() for w in windows])
                if windows
                else np.empty(0, dtype=np.float64)
            ),
        }
        for column in _INT_COLUMNS:
            state[column] = np.asarray([getattr(w, column) for w in windows], dtype=np.int64)
        return state

    def load_state(self, state: dict[str, Any]) -> None:
        """Restore a :meth:`state_dict` capture **in place** (bit-identical).

        The restored accumulators continue exactly where the captured run
        stopped, so a snapshot-resume run produces the same series as an
        uninterrupted one.
        """
        width = float(state["window_us"])
        if width != self.window_us:
            raise ConfigurationError(
                f"snapshot telemetry window is {width} us, recorder uses {self.window_us} us"
            )
        self._windows.clear()
        indices = state["index"].tolist()
        int_columns = {column: state[column].tolist() for column in _INT_COLUMNS}
        busy = state["busy_time_us"].tolist()
        command_counts = state["command_counts"]
        read_counts = state["read_latency_counts"].tolist()
        write_counts = state["write_latency_counts"].tolist()
        read_latencies = state["read_latencies"]
        write_latencies = state["write_latencies"]
        read_offset = 0
        write_offset = 0
        for position, index in enumerate(indices):
            window = self._windows[int(index)] = _Window()
            for column, values in int_columns.items():
                setattr(window, column, int(values[position]))
            window.busy_time_us = busy[position]
            window.command_counts[:] = command_counts[position].tolist()
            read_n = read_counts[position]
            write_n = write_counts[position]
            window.read_latencies.replace(read_latencies[read_offset : read_offset + read_n])
            window.write_latencies.replace(
                write_latencies[write_offset : write_offset + write_n]
            )
            read_offset += read_n
            write_offset += write_n
