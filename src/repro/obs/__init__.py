"""Observability: interval-windowed telemetry and structured event tracing.

Every run of the simulator used to collapse into one end-of-run
:meth:`~repro.ssd.stats.SimulationStats.summary` dictionary.  This package
adds the time dimension:

* :class:`~repro.obs.windows.WindowedRecorder` buckets host requests,
  latencies, flash commands, chip busy time, CMT hit/miss classes and GC
  activity into fixed-width windows of the **simulated** clock, producing a
  per-window time series (iops, tail latencies, WAF, GC pages moved,
  utilization) that snapshots and resumes bit-identically;
* :class:`~repro.obs.trace.TraceRecorder` collects typed simulator events
  (GC invocations, CMT eviction flushes, translation reads, snapshot
  restores, batch-planning decisions) and exports them as Chrome
  trace-event JSON loadable in Perfetto or ``chrome://tracing``;
* :data:`~repro.obs.trace.NULL_TRACER` is the zero-cost default every FTL
  carries — the hot paths stay byte-for-byte identical while observability
  is off, and the device only dispatches into its observed loop variants
  once per ``run`` call when it is on.

Wire it through :meth:`repro.ssd.device.SSD.enable_observability`, or from
the command line with ``--metrics-window-us`` / ``--trace-out``
(see ``docs/observability.md``).
"""

from repro.obs.trace import NULL_TRACER, NullTraceRecorder, TraceRecorder
from repro.obs.windows import WindowedRecorder

__all__ = ["WindowedRecorder", "TraceRecorder", "NullTraceRecorder", "NULL_TRACER"]
