"""Structured event tracing with Chrome trace-event JSON export.

Two recorders share one tiny protocol (``enabled`` / ``now_us`` /
:meth:`instant` / :meth:`complete`):

* :class:`NullTraceRecorder` — the zero-cost default.  Every FTL and device
  carries :data:`NULL_TRACER`; hook sites are gated on ``tracer.enabled`` so
  the disabled cost is one attribute load on *cold* paths only (the request
  hot loops never consult it — the device dispatches into observed loop
  variants once per ``run`` call instead).
* :class:`TraceRecorder` — collects typed events into flat columns and
  exports the Chrome trace-event JSON format (the ``traceEvents`` array
  form), loadable in Perfetto (https://ui.perfetto.dev) or
  ``chrome://tracing``.

Timestamps are **simulated** microseconds, which is exactly the unit the
trace-event format expects for ``ts``/``dur``.  Event names used by the
simulator's hook sites:

=====================  ====  =================================================
name                   ph    args
=====================  ====  =================================================
``gc``                 X     victim_block, pages_moved, translation_pages
``gc_group``           X     group, blocks_erased, pages_moved
``translation_gc``     i     victim_block, pages_moved
``cmt_evict``          i     tvpn
``translation_read``   i     chip, ppn (``ppn`` absent on the batched path)
``batch_plan``         i     planner, requests, fallbacks
``snapshot_restore``   i     finish_time_us
=====================  ====  =================================================

``ph: "X"`` is a *complete* event (``ts`` start + ``dur`` duration);
``ph: "i"`` is an *instant*.  Multi-hour replays stay bounded through a
per-name sampling cap: after ``max_events_per_name`` events of one name the
recorder drops further events of that name and reports the drop count in the
exported ``otherData`` block.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.nand.errors import ConfigurationError

__all__ = ["NullTraceRecorder", "TraceRecorder", "NULL_TRACER"]

#: Default per-name event cap.  GC events number in the thousands per run but
#: translation-read instants track flash commands (millions on long replays);
#: the cap bounds the trace file while keeping the interesting prefix.
DEFAULT_MAX_EVENTS_PER_NAME = 100_000


class NullTraceRecorder:
    """Do-nothing recorder: the zero-cost default wired into every FTL/device.

    ``enabled`` is ``False`` so hook sites skip their argument construction
    entirely; the methods exist (as no-ops) so call sites never need an
    ``is None`` dance.  ``now_us`` is writable — observed device loops stamp
    the current issue time unconditionally and the null recorder simply
    swallows it.
    """

    __slots__ = ("now_us",)

    enabled = False

    def __init__(self) -> None:
        self.now_us = 0.0

    def instant(self, name: str, ts_us: float, args: dict | None = None) -> None:
        """Ignore an instant event."""

    def complete(self, name: str, ts_us: float, dur_us: float, args: dict | None = None) -> None:
        """Ignore a complete (duration) event."""


#: The shared process-wide no-op recorder.  It holds no state besides the
#: scratch ``now_us`` clock, so sharing one instance everywhere is safe.
NULL_TRACER = NullTraceRecorder()


class TraceRecorder:
    """Collect typed simulator events and export Chrome trace-event JSON."""

    __slots__ = ("now_us", "max_events_per_name", "_events", "_counts", "_dropped")

    enabled = True

    def __init__(self, max_events_per_name: int = DEFAULT_MAX_EVENTS_PER_NAME) -> None:
        if max_events_per_name <= 0:
            raise ConfigurationError(
                f"max_events_per_name must be positive, got {max_events_per_name!r}"
            )
        #: Simulated clock stamped by the observed device loops before each
        #: request is encoded, so deep hook sites without a ``now`` argument
        #: (e.g. CMT eviction flushes) still get a meaningful timestamp.
        self.now_us = 0.0
        self.max_events_per_name = max_events_per_name
        self._events: list[dict[str, Any]] = []
        self._counts: dict[str, int] = {}
        self._dropped: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------- recording
    def _admit(self, name: str) -> bool:
        count = self._counts.get(name, 0)
        if count >= self.max_events_per_name:
            self._dropped[name] = self._dropped.get(name, 0) + 1
            return False
        self._counts[name] = count + 1
        return True

    def instant(self, name: str, ts_us: float, args: dict | None = None) -> None:
        """Record an instant event (``ph: "i"``, thread scope)."""
        if not self._admit(name):
            return
        event: dict[str, Any] = {
            "name": name,
            "ph": "i",
            "ts": ts_us,
            "pid": 0,
            "tid": 0,
            "s": "t",
        }
        if args:
            event["args"] = args
        self._events.append(event)

    def complete(self, name: str, ts_us: float, dur_us: float, args: dict | None = None) -> None:
        """Record a complete event spanning ``[ts_us, ts_us + dur_us]`` (``ph: "X"``)."""
        if not self._admit(name):
            return
        event: dict[str, Any] = {
            "name": name,
            "ph": "X",
            "ts": ts_us,
            "dur": dur_us,
            "pid": 0,
            "tid": 0,
        }
        if args:
            event["args"] = args
        self._events.append(event)

    # --------------------------------------------------------------- export
    def dropped_counts(self) -> dict[str, int]:
        """Events dropped per name by the sampling cap (empty = nothing dropped)."""
        return dict(self._dropped)

    def export(self) -> dict[str, Any]:
        """Return the Chrome trace-event JSON object form.

        The object form (``{"traceEvents": [...]}``) rather than the bare
        array so the export can carry metadata; both forms load in Perfetto
        and ``chrome://tracing``.
        """
        return {
            "traceEvents": list(self._events),
            "displayTimeUnit": "ms",
            "otherData": {
                "clock": "simulated_us",
                "max_events_per_name": self.max_events_per_name,
                "dropped_events": dict(self._dropped),
            },
        }

    def write(self, path: str | Path) -> Path:
        """Serialize :meth:`export` to ``path`` and return it."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.export()), encoding="utf-8")
        return path
