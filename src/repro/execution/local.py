"""The three single-host executor backends: serial, thread and process.

* :class:`SerialBackend` runs every task inline in the calling process —
  zero pickling, zero worker machinery — which is what makes ``--jobs 1``
  runs debuggable under ``pdb`` and profilable with ``cProfile``;
* :class:`ThreadBackend` fans tasks over a :class:`ThreadPoolExecutor`
  (useful when tasks block on shared-filesystem I/O, e.g. snapshot
  restores, despite the GIL serializing simulation compute);
* :class:`ProcessBackend` fans tasks over a :class:`ProcessPoolExecutor` —
  the pre-refactor orchestrator behavior, now one backend among peers.

All three funnel through :func:`repro.execution.base.run_payload`, and all
three report task failures as data (a traceback string plus the worker
identity that produced it) rather than raised exceptions.  A worker process
that *dies* (rather than raising) surfaces as a broken-pool error on its
task; the orchestrator's retry pass then resubmits on a fresh backend
instance, i.e. a fresh pool.
"""

from __future__ import annotations

import threading
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, ThreadPoolExecutor, wait
from typing import Iterator, Sequence

from repro.execution.base import (
    CompletedTask,
    ExecutorBackend,
    TaskPayload,
    default_worker_id,
    run_payload,
)

__all__ = ["SerialBackend", "ThreadBackend", "ProcessBackend"]


def _run_completed(payload: TaskPayload, backend: str, worker: str) -> CompletedTask:
    """Run one payload, capturing success or traceback as a completion."""
    try:
        result, elapsed = run_payload(payload)
    except Exception:
        return CompletedTask(
            index=payload.index,
            error=traceback.format_exc(),
            worker=worker,
            backend=backend,
        )
    return CompletedTask(
        index=payload.index,
        result=result,
        elapsed_s=elapsed,
        worker=worker,
        backend=backend,
    )


class SerialBackend(ExecutorBackend):
    """In-process, in-order execution with no pickling or worker machinery."""

    name = "serial"

    def __init__(self, workers: int = 1, on_note=None) -> None:
        super().__init__(workers=1, on_note=on_note)

    def submit_all(self, payloads: Sequence[TaskPayload]) -> Iterator[CompletedTask]:
        worker = default_worker_id()
        for payload in payloads:
            yield _run_completed(payload, self.name, worker)

    def describe(self) -> str:
        return "serial (in-process)"


class ThreadBackend(ExecutorBackend):
    """Local thread-pool execution (one shared interpreter, no pickling)."""

    name = "thread"

    def submit_all(self, payloads: Sequence[TaskPayload]) -> Iterator[CompletedTask]:
        base_worker = default_worker_id()

        def run_one(payload: TaskPayload) -> CompletedTask:
            worker = f"{base_worker}/{threading.current_thread().name}"
            return _run_completed(payload, self.name, worker)

        max_workers = min(self.workers, max(1, len(payloads)))
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            futures = [pool.submit(run_one, payload) for payload in payloads]
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    yield future.result()


def _process_entry(payload: TaskPayload, backend_name: str) -> CompletedTask:
    """Worker-process entry point (module-level so it pickles)."""
    return _run_completed(payload, backend_name, default_worker_id())


class ProcessBackend(ExecutorBackend):
    """Local process-pool execution (the classic ``--jobs N`` behavior)."""

    name = "process"

    def submit_all(self, payloads: Sequence[TaskPayload]) -> Iterator[CompletedTask]:
        max_workers = min(self.workers, max(1, len(payloads)))
        with ProcessPoolExecutor(max_workers=max_workers) as pool:
            futures = {
                pool.submit(_process_entry, payload, self.name): payload
                for payload in payloads
            }
            pending = set(futures)
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    payload = futures[future]
                    try:
                        yield future.result()
                    except Exception as exc:
                        # The worker process died (e.g. a hard crash breaks
                        # the whole pool) rather than raising inside the
                        # task; its identity is unrecoverable.
                        yield CompletedTask(
                            index=payload.index,
                            error=(
                                f"worker process died before reporting: {exc!r}\n"
                                f"{traceback.format_exc()}"
                            ),
                            worker="unknown",
                            backend=self.name,
                        )
