"""Atomic filesystem primitives shared by every concurrent-writer layer.

Three operations cover all the coordination the repo does on shared
directories (the result cache, the snapshot store and the file-queue
execution backend):

* :func:`publish_json` / :func:`publish_text` — write-then-rename publication
  of a single file: readers either see the complete new content or the old
  one, never a partial write, and the last of several racing writers wins;
* :func:`publish_dir` — rename publication of a whole directory (the snapshot
  store's image layout): the first publisher wins and every loser quietly
  discards its copy;
* :func:`claim_path` — rename-based mutual exclusion over a file: of N
  processes racing to claim the same path, exactly one succeeds (POSIX
  ``rename(2)`` is atomic), which is what makes the file-queue's
  work-stealing safe across hosts sharing one directory.

Everything here is stdlib-only and imports nothing from the rest of the
package, so any layer may depend on it without cycles.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
from pathlib import Path
from typing import Any

__all__ = ["publish_json", "publish_text", "publish_dir", "claim_path"]


def _temp_name(path: Path) -> Path:
    """A sibling temp path unique per (process, thread) so concurrent
    publishers of the same target never collide on the temp file either."""
    return path.with_name(f".{path.name}.{os.getpid()}-{threading.get_ident()}.tmp")


def publish_text(path: Path, text: str) -> Path:
    """Atomically publish ``text`` at ``path`` (write temp sibling + rename).

    Concurrent publishers are safe: readers see either the previous complete
    content or the new complete content; the last writer wins.
    """
    path = Path(path)
    temp = _temp_name(path)
    try:
        temp.write_text(text, encoding="utf-8")
        os.replace(temp, path)
    finally:
        temp.unlink(missing_ok=True)
    return path


def publish_json(path: Path, payload: Any, **dumps_kwargs: Any) -> Path:
    """Atomically publish ``payload`` as JSON at ``path``."""
    dumps_kwargs.setdefault("sort_keys", True)
    return publish_text(path, json.dumps(payload, **dumps_kwargs))


def publish_dir(temp: Path, final: Path) -> bool:
    """Atomically promote the directory ``temp`` to ``final``.

    Returns ``True`` when this caller's copy became ``final``; ``False`` when
    a concurrent publisher got there first (this caller's ``temp`` is
    discarded — content-addressed layouts make the copies interchangeable).
    Any other failure re-raises after cleaning up ``temp``.
    """
    temp, final = Path(temp), Path(final)
    try:
        os.replace(temp, final)
        return True
    except OSError:
        shutil.rmtree(temp, ignore_errors=True)
        if final.exists():
            return False
        raise


def claim_path(src: Path, dst: Path) -> bool:
    """Atomically claim ``src`` by renaming it to ``dst``.

    Of N processes racing to claim the same ``src`` (each with its own
    ``dst``), exactly one rename succeeds; every loser gets ``False``.
    """
    try:
        os.rename(src, dst)
        return True
    except FileNotFoundError:
        return False
