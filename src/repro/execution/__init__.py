"""Pluggable execution backends for the experiment orchestrator.

The orchestrator plans *what* to run; this package decides *where*: inline
in the calling process (``serial``), across local threads or processes
(``thread`` / ``process``), or across any number of hosts cooperating
through a shared queue directory (``file-queue``).  All backends implement
the same small :class:`~repro.execution.base.ExecutorBackend` contract and
— because every experiment is deterministic — produce bit-identical
results for the same task list.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from repro.execution.base import (
    CompletedTask,
    ExecutorBackend,
    TaskPayload,
    default_worker_id,
    resolve_workers,
    run_payload,
)
from repro.execution.filequeue import FileQueue, FileQueueBackend, run_worker
from repro.execution.local import ProcessBackend, SerialBackend, ThreadBackend

__all__ = [
    "BACKEND_NAMES",
    "CompletedTask",
    "ExecutorBackend",
    "FileQueue",
    "FileQueueBackend",
    "ProcessBackend",
    "SerialBackend",
    "TaskPayload",
    "ThreadBackend",
    "create_backend",
    "default_worker_id",
    "resolve_workers",
    "run_payload",
    "run_worker",
]

#: Every selectable backend name (the CLI additionally accepts ``auto``).
BACKEND_NAMES = ("serial", "thread", "process", "file-queue")


def create_backend(
    name: str,
    *,
    workers: int = 1,
    queue_dir: str | Path | None = None,
    on_note: Callable[[str], None] | None = None,
) -> ExecutorBackend:
    """Build the named backend.

    ``workers`` must already be resolved (see
    :func:`~repro.execution.base.resolve_workers` for the ``0`` = auto-detect
    convention).  ``file-queue`` requires ``queue_dir``; the other backends
    ignore it.
    """
    if name == "serial":
        return SerialBackend(on_note=on_note)
    if name == "thread":
        return ThreadBackend(workers=workers, on_note=on_note)
    if name == "process":
        return ProcessBackend(workers=workers, on_note=on_note)
    if name == "file-queue":
        if queue_dir is None:
            raise ValueError("the file-queue backend requires a queue directory")
        return FileQueueBackend(queue_dir, workers=workers, on_note=on_note)
    raise ValueError(f"unknown execution backend {name!r} (expected one of {', '.join(BACKEND_NAMES)})")
