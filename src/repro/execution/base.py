"""The executor-backend interface and its task/result wire format.

The orchestrator (:mod:`repro.experiments.orchestrator`) plans work into
tasks; *how* those tasks run — in-process, across local threads or
processes, or stolen from a shared directory by workers on several hosts —
is the backend's business.  The contract is deliberately small:

* a :class:`TaskPayload` is one self-contained unit of work: which
  experiment, at which scale, with which kwargs and which snapshot store.
  It is JSON-serializable (:meth:`TaskPayload.to_wire`) so it can cross a
  process boundary or live in a queue file on a network share;
* :meth:`ExecutorBackend.submit_all` takes the payloads and yields one
  :class:`CompletedTask` per payload **as each finishes** (any order), each
  carrying the result-or-traceback plus the identity of the worker that
  produced it;
* backends own their whole lifecycle inside ``submit_all`` (pools are
  created and torn down there), so a fresh backend instance is always a
  fresh set of workers — which is what the orchestrator's retry-once policy
  relies on.

:func:`run_payload` is the single task-running entry point every backend
shares; it imports the experiment layer lazily so this package stays
import-light and cycle-free.
"""

from __future__ import annotations

import os
import socket
import time
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Sequence

__all__ = [
    "TaskPayload",
    "CompletedTask",
    "ExecutorBackend",
    "run_payload",
    "resolve_workers",
    "default_worker_id",
]


def resolve_workers(jobs: int) -> int:
    """Resolve a ``--jobs``/``--workers`` value to a concrete worker count.

    ``0`` means auto-detect: use :func:`os.cpu_count` (falling back to 1 when
    the platform cannot report it).  Negative values are rejected.
    """
    if jobs < 0:
        raise ValueError("jobs must be >= 0 (0 = auto-detect os.cpu_count())")
    if jobs == 0:
        return os.cpu_count() or 1
    return jobs


def default_worker_id() -> str:
    """This process's worker identity: ``<hostname>-<pid>``.

    Recorded in every result a worker produces, so a failure in a
    distributed run names the host and process that ran the task.
    """
    return f"{socket.gethostname()}-{os.getpid()}"


def _freeze(value: Any) -> Any:
    """Restore the kwargs freezing of ``ExperimentTask.create`` after a JSON
    round trip (sequences become tuples so run kwargs match bit-for-bit)."""
    if isinstance(value, list):
        return tuple(_freeze(item) for item in value)
    return value


@dataclass(frozen=True)
class TaskPayload:
    """One self-contained unit of work, serializable across any boundary."""

    #: Position of this task in the submitting run's task list; completions
    #: arrive in any order and are matched back through this index.
    index: int
    experiment: str
    label: str
    #: Frozen kwargs exactly as ``ExperimentTask`` stores them.
    kwargs: tuple[tuple[str, Any], ...]
    scale: str
    #: Shared warm-image store directory (installed in whichever process the
    #: task lands in), or ``None``.
    snapshot_dir: str | None = None
    #: Windowed-telemetry bucket width in simulated microseconds, or ``None``
    #: for telemetry off (see :mod:`repro.obs`).
    metrics_window_us: float | None = None
    #: Directory event traces are written into, or ``None`` for tracing off.
    trace_dir: str | None = None

    def run_kwargs(self) -> dict[str, Any]:
        return {name: value for name, value in self.kwargs}

    def to_wire(self) -> dict[str, Any]:
        """A JSON-serializable description (queue files, logs)."""
        return {
            "index": self.index,
            "experiment": self.experiment,
            "label": self.label,
            "kwargs": [[name, value] for name, value in self.kwargs],
            "scale": self.scale,
            "snapshot_dir": self.snapshot_dir,
            "metrics_window_us": self.metrics_window_us,
            "trace_dir": self.trace_dir,
        }

    @classmethod
    def from_wire(cls, wire: dict[str, Any]) -> "TaskPayload":
        """Rebuild a payload from :meth:`to_wire` output, re-freezing kwargs
        so the reconstructed task runs with bit-identical arguments."""
        window = wire.get("metrics_window_us")
        return cls(
            index=int(wire["index"]),
            experiment=str(wire["experiment"]),
            label=str(wire["label"]),
            kwargs=tuple((str(name), _freeze(value)) for name, value in wire["kwargs"]),
            scale=str(wire["scale"]),
            snapshot_dir=wire.get("snapshot_dir"),
            metrics_window_us=float(window) if window is not None else None,
            trace_dir=wire.get("trace_dir"),
        )


@dataclass
class CompletedTask:
    """One finished task: its result (or traceback) plus provenance."""

    index: int
    result: dict[str, Any] | None = None
    error: str | None = None
    elapsed_s: float = 0.0
    #: Identity of the worker that ran the task (``<host>-<pid>``, possibly
    #: suffixed with a thread name), or ``"unknown"`` when the worker died
    #: before reporting.
    worker: str = "unknown"
    backend: str = "?"


def run_payload(payload: TaskPayload) -> tuple[dict, float]:
    """Run one task; returns ``(result dict, elapsed seconds)``.

    This is the single execution entry point every backend funnels through:
    it installs the payload's snapshot store in the current process, runs the
    experiment, and returns the result as a plain dict (the form that crosses
    process boundaries and lands in caches/queues).  The experiment layer is
    imported lazily to keep this package import-cycle-free.
    """
    from repro.experiments import run_experiment
    from repro.experiments.runner import set_metrics_window_us, set_snapshot_dir, set_trace_dir

    set_snapshot_dir(payload.snapshot_dir)
    set_metrics_window_us(payload.metrics_window_us)
    set_trace_dir(payload.trace_dir)
    started = time.perf_counter()
    result = run_experiment(payload.experiment, scale=payload.scale, **payload.run_kwargs())
    return result.to_dict(), time.perf_counter() - started


class ExecutorBackend(ABC):
    """Strategy interface: how a batch of task payloads gets executed.

    Implementations must yield exactly one :class:`CompletedTask` per
    submitted payload (in completion order) and surface task failures as
    ``error`` tracebacks on the completion — never as raised exceptions —
    so one bad task cannot take down the batch.
    """

    #: Registry name ("serial", "thread", "process", "file-queue").
    name = "?"

    def __init__(self, workers: int = 1, on_note: Callable[[str], None] | None = None) -> None:
        #: Resolved worker-parallelism of this backend (1 for serial).
        self.workers = workers
        #: Optional sink for operational notes (e.g. "waiting for workers");
        #: distinct from per-task progress, which the orchestrator emits.
        self.on_note = on_note

    @abstractmethod
    def submit_all(self, payloads: Sequence[TaskPayload]) -> Iterator[CompletedTask]:
        """Execute every payload; yield completions as they finish."""

    def describe(self) -> str:
        """One-line human description for progress output."""
        return f"{self.name} x{self.workers}"

    def _note(self, message: str) -> None:
        if self.on_note is not None:
            self.on_note(message)
