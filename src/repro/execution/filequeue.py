"""Multi-host work-stealing execution over a shared directory.

The file-queue backend lets any number of hosts cooperate on one study by
pointing them at the same queue directory (a local path or a network
mount).  There is no broker process: the filesystem itself is the
coordination substrate, using only the atomic primitives in
:mod:`repro.execution.atomic`.

Queue directory layout::

    <queue-dir>/
      tasks/    <task-id>.json              # enqueued, claimable work
      claims/   <task-id>@<worker-id>.json  # claimed work (rename-moved here)
      results/  <task-id>.json              # atomically published outcomes
      workers/  <worker-id>                 # heartbeat files (mtime = alive)
      stop                                  # sentinel: coordinator is done

The protocol:

* the **coordinator** (:class:`FileQueueBackend.submit_all`) publishes one
  task file per payload, optionally spawns local worker processes, then
  polls ``results/`` — reclaiming tasks whose claimant's heartbeat went
  stale — and finally writes the ``stop`` sentinel;
* a **worker** (:func:`run_worker`, CLI verb
  ``python -m repro.experiments worker <queue-dir>``) claims a task by
  atomically renaming its file from ``tasks/`` into ``claims/`` — of N
  racing workers exactly one wins — keeps a heartbeat thread touching its
  ``workers/`` file (so long tasks are not mistaken for dead workers), runs
  the task, and atomically publishes the outcome into ``results/``;
* a claim whose worker stops heartbeating for ``dead_after_s`` is renamed
  back into ``tasks/`` for another worker to steal; because every task is
  deterministic and results are published atomically, a worker that turns
  out to be merely slow publishes an identical result and nothing is lost.

Workers never need the study spec, the cache or the CLI arguments: each
task file is a self-contained :class:`~repro.execution.base.TaskPayload`
(experiment, scale, kwargs, snapshot dir), so ``worker`` processes attach
to a queue directory knowing nothing else.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import sys
import threading
import time
import traceback
import uuid
from pathlib import Path
from typing import Callable, Iterator, Sequence

from repro.execution.atomic import claim_path, publish_json
from repro.execution.base import (
    CompletedTask,
    ExecutorBackend,
    TaskPayload,
    default_worker_id,
    run_payload,
)

__all__ = ["FileQueue", "FileQueueBackend", "run_worker"]

#: How often a busy worker's heartbeat thread touches its liveness file.
HEARTBEAT_PERIOD_S = 2.0

#: Claims whose worker has not heartbeaten for this long are reclaimed.
DEFAULT_DEAD_AFTER_S = 30.0


class FileQueue:
    """The on-disk queue: atomic enqueue/claim/publish over one directory."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.tasks_dir = self.root / "tasks"
        self.claims_dir = self.root / "claims"
        self.results_dir = self.root / "results"
        self.workers_dir = self.root / "workers"
        self._stop = self.root / "stop"

    def ensure(self) -> "FileQueue":
        for directory in (self.tasks_dir, self.claims_dir, self.results_dir, self.workers_dir):
            directory.mkdir(parents=True, exist_ok=True)
        return self

    # --------------------------------------------------------------- enqueue
    def enqueue(self, task_id: str, payload: TaskPayload) -> Path:
        """Publish one claimable task file."""
        return publish_json(self.tasks_dir / f"{task_id}.json", payload.to_wire())

    def pending_ids(self) -> list[str]:
        """Task ids currently claimable (sorted for deterministic stealing)."""
        return sorted(path.stem for path in self.tasks_dir.glob("*.json"))

    # ----------------------------------------------------------------- claim
    def claim(self, worker_id: str) -> tuple[str, TaskPayload] | None:
        """Atomically claim one task, or ``None`` when nothing is claimable.

        The claim is a rename of the task file into ``claims/``; of N
        workers racing for the same task exactly one rename succeeds and
        the rest move on to the next file.
        """
        for path in sorted(self.tasks_dir.glob("*.json")):
            destination = self.claims_dir / f"{path.stem}@{worker_id}.json"
            if not claim_path(path, destination):
                continue
            wire = json.loads(destination.read_text(encoding="utf-8"))
            return path.stem, TaskPayload.from_wire(wire)
        return None

    def claims(self) -> dict[str, list[str]]:
        """Claim history: task id -> worker ids that ever claimed it."""
        record: dict[str, list[str]] = {}
        for path in sorted(self.claims_dir.glob("*.json")):
            task_id, _, worker_id = path.stem.rpartition("@")
            record.setdefault(task_id, []).append(worker_id)
        return record

    # ------------------------------------------------------------- heartbeat
    def heartbeat(self, worker_id: str) -> None:
        """Refresh this worker's liveness file."""
        (self.workers_dir / worker_id).touch()

    def live_workers(self, within_s: float) -> list[str]:
        """Worker ids whose heartbeat is fresher than ``within_s`` seconds."""
        now = time.time()
        return sorted(
            path.name
            for path in self.workers_dir.iterdir()
            if now - path.stat().st_mtime <= within_s
        )

    def reclaim_dead(self, dead_after_s: float) -> list[str]:
        """Return stale claims to ``tasks/``; returns the reclaimed task ids.

        A claim is stale when its task has no published result and the
        claiming worker's last sign of life (heartbeat file, falling back to
        the claim file itself for workers that died mid-claim) is older than
        ``dead_after_s``.
        """
        now = time.time()
        reclaimed: list[str] = []
        for path in sorted(self.claims_dir.glob("*.json")):
            task_id, _, worker_id = path.stem.rpartition("@")
            if (self.results_dir / f"{task_id}.json").exists():
                continue
            last_alive = path.stat().st_mtime
            beat = self.workers_dir / worker_id
            if beat.exists():
                last_alive = max(last_alive, beat.stat().st_mtime)
            if now - last_alive <= dead_after_s:
                continue
            if claim_path(path, self.tasks_dir / f"{task_id}.json"):
                reclaimed.append(task_id)
        return reclaimed

    # --------------------------------------------------------------- results
    def publish_result(self, task_id: str, payload: dict) -> Path:
        """Atomically publish one task outcome (success or error).

        Key order is preserved (no ``sort_keys``) so result rows render
        with the same column order as an in-process run.
        """
        return publish_json(self.results_dir / f"{task_id}.json", payload, sort_keys=False)

    def result(self, task_id: str) -> dict | None:
        """The published outcome for ``task_id``, or ``None``."""
        path = self.results_dir / f"{task_id}.json"
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None

    # ------------------------------------------------------------------ stop
    def request_stop(self) -> None:
        """Tell attached workers the coordinator is done (they drain and exit)."""
        self._stop.touch()

    def stop_requested(self) -> bool:
        return self._stop.exists()

    def clear_stop(self) -> None:
        self._stop.unlink(missing_ok=True)


# ------------------------------------------------------------------- workers
def run_worker(
    queue_dir: str | Path,
    *,
    poll_s: float = 0.5,
    drain: bool = False,
    max_tasks: int | None = None,
    worker_id: str | None = None,
    log: Callable[[str], None] | None = None,
) -> int:
    """Attach to a queue directory and execute tasks until told to stop.

    The loop claims, runs and publishes tasks one at a time; a daemon
    heartbeat thread keeps the worker's liveness file fresh even through
    long tasks.  The worker exits when the coordinator's ``stop`` sentinel
    is present and nothing is claimable — or, with ``drain=True``, as soon
    as nothing is claimable.  Returns the number of tasks executed.
    """
    queue = FileQueue(queue_dir).ensure()
    identity = worker_id or default_worker_id()
    emit = log or (lambda line: None)
    queue.heartbeat(identity)

    stop_beating = threading.Event()

    def beat() -> None:
        while not stop_beating.wait(HEARTBEAT_PERIOD_S):
            try:
                queue.heartbeat(identity)
            except OSError:  # pragma: no cover - transient share hiccup
                pass

    beater = threading.Thread(target=beat, name=f"heartbeat-{identity}", daemon=True)
    beater.start()
    executed = 0
    try:
        while max_tasks is None or executed < max_tasks:
            claimed = queue.claim(identity)
            if claimed is None:
                if drain or queue.stop_requested():
                    break
                time.sleep(poll_s)
                continue
            task_id, payload = claimed
            emit(f"[worker {identity}] {payload.label}: claimed")
            outcome: dict = {
                "label": payload.label,
                "worker": identity,
                "backend": FileQueueBackend.name,
            }
            try:
                result, elapsed = run_payload(payload)
            except Exception:
                outcome["error"] = traceback.format_exc()
                emit(f"[worker {identity}] {payload.label}: FAILED")
            else:
                outcome["result"] = result
                outcome["elapsed_s"] = elapsed
                emit(f"[worker {identity}] {payload.label}: done in {elapsed:.1f} s")
            queue.publish_result(task_id, outcome)
            executed += 1
    finally:
        stop_beating.set()
        beater.join(timeout=HEARTBEAT_PERIOD_S + 1.0)
    return executed


def _worker_entry(queue_dir: str, poll_s: float) -> None:
    """Local-worker process entry point (module-level so it pickles)."""
    run_worker(
        queue_dir,
        poll_s=poll_s,
        log=lambda line: print(line, file=sys.stderr, flush=True),
    )


# --------------------------------------------------------------- coordinator
class FileQueueBackend(ExecutorBackend):
    """Coordinate a run over a shared queue directory.

    ``workers`` local worker processes are spawned for the duration of the
    run (``0`` = pure coordinator: only externally attached ``worker``
    processes — possibly on other hosts — execute tasks).  The coordinator
    itself only enqueues, polls results, reclaims dead workers' tasks and
    finally writes the ``stop`` sentinel.
    """

    name = "file-queue"

    def __init__(
        self,
        queue_dir: str | Path,
        *,
        workers: int = 1,
        poll_s: float = 0.2,
        dead_after_s: float = DEFAULT_DEAD_AFTER_S,
        on_note: Callable[[str], None] | None = None,
    ) -> None:
        super().__init__(workers=workers, on_note=on_note)
        self.queue_dir = Path(queue_dir)
        self.poll_s = poll_s
        self.dead_after_s = dead_after_s

    def describe(self) -> str:
        return f"file-queue on {self.queue_dir} ({self.workers} local workers)"

    def submit_all(self, payloads: Sequence[TaskPayload]) -> Iterator[CompletedTask]:
        queue = FileQueue(self.queue_dir).ensure()
        queue.clear_stop()
        # A per-run token keeps ids unique across runs (and retry passes)
        # sharing one queue directory.
        token = uuid.uuid4().hex[:8]
        outstanding = {f"{token}-{payload.index:05d}": payload for payload in payloads}
        for task_id, payload in sorted(outstanding.items()):
            queue.enqueue(task_id, payload)

        context = multiprocessing.get_context()
        locals_ = [
            context.Process(
                target=_worker_entry,
                args=(str(self.queue_dir), self.poll_s),
                daemon=True,
            )
            for _ in range(self.workers)
        ]
        for process in locals_:
            process.start()

        last_note = time.monotonic()
        try:
            while outstanding:
                progressed = False
                for task_id in sorted(outstanding):
                    outcome = queue.result(task_id)
                    if outcome is None:
                        continue
                    payload = outstanding.pop(task_id)
                    progressed = True
                    yield CompletedTask(
                        index=payload.index,
                        result=outcome.get("result"),
                        error=outcome.get("error"),
                        elapsed_s=float(outcome.get("elapsed_s", 0.0)),
                        worker=str(outcome.get("worker", "unknown")),
                        backend=self.name,
                    )
                if outstanding and not progressed:
                    queue.reclaim_dead(self.dead_after_s)
                    if time.monotonic() - last_note > 10.0:
                        live = queue.live_workers(within_s=3 * HEARTBEAT_PERIOD_S)
                        self._note(
                            f"file-queue: waiting on {len(outstanding)} tasks in "
                            f"{self.queue_dir} ({len(live)} live workers: "
                            f"{', '.join(live) or 'none — attach some with the worker verb'})"
                        )
                        last_note = time.monotonic()
                    time.sleep(self.poll_s)
        finally:
            queue.request_stop()
            for process in locals_:
                process.join(timeout=4 * self.poll_s + 2.0)
            for process in locals_:
                if process.is_alive():  # pragma: no cover - stuck worker
                    process.terminate()
